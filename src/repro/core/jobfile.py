"""Binary machine job file: the "pattern tape" format.

Pattern generators consumed a flat binary stream of dosed figures.  This
module defines a compact period-flavoured format and a reader/writer,
the machine-program container streamed by
:mod:`repro.machine.program` (header + per-shard segments), plus the
exact (full double precision) shard-result serialization the
content-addressed cache stores (:mod:`repro.core.cache`):

Header (32 bytes)::

    magic   4s   b"EBJ1"
    unit    d    layout units per count (e.g. 1e-3 µm)
    dose    d    base dose [µC/cm²]
    count   I    number of figure records
    pad     4x

Figure record (20 bytes), coordinates as signed 32-bit counts::

    y_bottom, y_top            2 × i
    x_bottom_left, x_bottom_right  (stored as i at the record's scale)
    x_top_left, x_top_right    packed as deltas vs. the bottom edge (h)
    dose_milli                 H   relative dose × 1000

The delta packing is exact for the slant range the fracturers produce
(|Δx| < 32767 counts); the writer verifies and raises otherwise.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import List, Tuple, Union

from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid

MAGIC = b"EBJ1"
_HEADER = struct.Struct(">4sddI4x")
_RECORD = struct.Struct(">iiiihhH")


class JobFileError(ValueError):
    """Raised for malformed job files or unrepresentable jobs."""


def dumps_job(job: MachineJob, unit: float = 1e-3) -> bytes:
    """Serialize a machine job to bytes.

    Args:
        job: the job (explicit shots required — aggregate jobs cannot be
            serialized).
        unit: coordinate quantum in layout units (1 nm for µm layouts).
    """
    if unit <= 0:
        raise JobFileError("unit must be positive")
    chunks = [
        _HEADER.pack(MAGIC, unit, job.base_dose, len(job.shots))
    ]
    for shot in job.shots:
        chunks.append(_pack_shot(shot, unit))
    return b"".join(chunks)


def _pack_shot(shot: Shot, unit: float) -> bytes:
    t = shot.trapezoid

    def q(v: float) -> int:
        return int(round(v / unit))

    y0, y1 = q(t.y_bottom), q(t.y_top)
    xbl, xbr = q(t.x_bottom_left), q(t.x_bottom_right)
    dtl = q(t.x_top_left) - xbl
    dtr = q(t.x_top_right) - xbr
    if not (-32768 <= dtl <= 32767 and -32768 <= dtr <= 32767):
        raise JobFileError(
            f"slant delta out of int16 range: {dtl}, {dtr} counts"
        )
    dose_milli = int(round(shot.dose * 1000.0))
    if not (0 <= dose_milli <= 0xFFFF):
        raise JobFileError(f"dose {shot.dose} outside the representable range")
    return _RECORD.pack(y0, y1, xbl, xbr, dtl, dtr, dose_milli)


def loads_job(data: bytes, name: str = "jobfile") -> MachineJob:
    """Parse job-file bytes back into a :class:`MachineJob`.

    Raises:
        JobFileError: on bad magic, truncation, or inconsistent counts.
    """
    if len(data) < _HEADER.size:
        raise JobFileError("truncated header")
    magic, unit, base_dose, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise JobFileError(f"bad magic {magic!r}")
    expected = _HEADER.size + count * _RECORD.size
    if len(data) < expected:
        raise JobFileError(
            f"truncated records: need {expected} bytes, have {len(data)}"
        )
    shots: List[Shot] = []
    offset = _HEADER.size
    for _ in range(count):
        y0, y1, xbl, xbr, dtl, dtr, dose_milli = _RECORD.unpack_from(
            data, offset
        )
        offset += _RECORD.size
        if y1 <= y0:
            raise JobFileError("record with non-positive height")
        trapezoid = Trapezoid(
            y0 * unit,
            y1 * unit,
            xbl * unit,
            xbr * unit,
            (xbl + dtl) * unit,
            (xbr + dtr) * unit,
        )
        shots.append(Shot(trapezoid, dose_milli / 1000.0))
    return MachineJob(shots, base_dose=base_dose, name=name)


def write_job(job: MachineJob, path: Union[str, Path], unit: float = 1e-3) -> int:
    """Write a job file; returns the byte count."""
    data = dumps_job(job, unit=unit)
    Path(path).write_bytes(data)
    return len(data)


def read_job(path: Union[str, Path]) -> MachineJob:
    """Read a job file."""
    p = Path(path)
    return loads_job(p.read_bytes(), name=p.stem)


class JobFileWriter:
    """Incremental job-file writer: one shot at a time, bounded memory.

    Emits bytes identical to :func:`write_job` of a job holding the same
    shots in the same order.  The header carries the shot count, so the
    caller declares it up front and the writer enforces it — writing
    more shots raises immediately, and :meth:`close` with fewer raises
    and discards the staging file.  The file is staged next to ``path``
    and published atomically on a successful close, so a crashed
    streaming run never leaves a truncated job file under the final
    name.
    """

    def __init__(
        self,
        path: Union[str, Path],
        count: int,
        base_dose: float = 1.0,
        unit: float = 1e-3,
    ) -> None:
        if unit <= 0:
            raise JobFileError("unit must be positive")
        if count < 0:
            raise JobFileError("shot count must be non-negative")
        self.path = Path(path)
        self.unit = unit
        self.count = int(count)
        self._staging = self.path.with_name(self.path.name + ".staging")
        self._fh = open(self._staging, "wb")
        self._fh.write(_HEADER.pack(MAGIC, unit, base_dose, self.count))
        self._written = 0
        self._closed = False

    def write_shot(self, shot: Shot) -> None:
        """Append one figure record."""
        if self._closed:
            raise JobFileError("job-file writer is closed")
        if self._written >= self.count:
            raise JobFileError(
                f"declared {self.count} shots but a {self._written + 1}th "
                "arrived"
            )
        self._fh.write(_pack_shot(shot, self.unit))
        self._written += 1

    def close(self) -> int:
        """Publish the file; returns its byte count."""
        if self._closed:
            return job_file_bytes(self.count)
        self._closed = True
        self._fh.close()
        if self._written != self.count:
            self._staging.unlink(missing_ok=True)
            raise JobFileError(f"declared {self.count} shots but wrote {self._written}")
        os.replace(self._staging, self.path)
        return job_file_bytes(self.count)

    def abort(self) -> None:
        """Discard the staging file without publishing (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._fh.close()
        self._staging.unlink(missing_ok=True)

    def __enter__(self) -> "JobFileWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.abort()
        else:
            self.close()


def job_file_bytes(figure_count: int) -> int:
    """Size of a job file with ``figure_count`` records."""
    return _HEADER.size + figure_count * _RECORD.size


# ---------------------------------------------------------------------------
# Machine-program container (.ebp)
# ---------------------------------------------------------------------------
#
# A machine program is the lowered data stream a writer actually
# consumes: per-scanline RLE runs for a raster machine, dosed shot/flash
# records for VSB and vector machines.  The container is a fixed header
# followed by one segment per occupied shard, concatenated in the shard
# plan's row-major order — the writer streams segments to disk one at a
# time (bounded memory), and the reader here reverses the container for
# verification and golden tests.  Segment payload encodings live in
# :mod:`repro.machine.program`; this module owns only the framing.

PROGRAM_MAGIC = b"EBP1"
#: magic, mode code, pad, address_unit, origin x/y, base dose, segments.
_PROGRAM_HEADER = struct.Struct(">4sBxxxddddI")
#: field index (col, row), record count, payload byte count.
_PROGRAM_SEGMENT = struct.Struct(">iiII")

#: Machine-architecture codes of the program header.
PROGRAM_MODES = {"raster": 1, "vsb": 2, "vector": 3}
_PROGRAM_MODE_NAMES = {code: name for name, code in PROGRAM_MODES.items()}


@dataclass(frozen=True)
class ProgramSegment:
    """One shard's slice of a machine program."""

    index: Tuple[int, int]
    record_count: int
    payload: bytes


@dataclass(frozen=True)
class ProgramImage:
    """A parsed machine-program container."""

    mode: str
    address_unit: float
    origin: Tuple[float, float]
    base_dose: float
    segments: Tuple[ProgramSegment, ...]

    def record_count(self) -> int:
        """Total records (runs or shots) across all segments."""
        return sum(seg.record_count for seg in self.segments)


def pack_program_header(
    mode: str,
    address_unit: float,
    origin: Tuple[float, float],
    base_dose: float,
    segment_count: int,
) -> bytes:
    """Serialize a machine-program file header."""
    if mode not in PROGRAM_MODES:
        raise JobFileError(f"unknown machine-program mode {mode!r}")
    return _PROGRAM_HEADER.pack(
        PROGRAM_MAGIC,
        PROGRAM_MODES[mode],
        address_unit,
        origin[0],
        origin[1],
        base_dose,
        segment_count,
    )


def pack_program_segment(
    index: Tuple[int, int], record_count: int, payload: bytes
) -> bytes:
    """Serialize one segment (header + payload)."""
    return (
        _PROGRAM_SEGMENT.pack(index[0], index[1], record_count, len(payload))
        + payload
    )


def loads_program(data: bytes) -> ProgramImage:
    """Parse machine-program bytes back into a :class:`ProgramImage`.

    Raises:
        JobFileError: on bad magic, unknown mode, truncation, or
            segment-count/byte-count inconsistencies.
    """
    if len(data) < _PROGRAM_HEADER.size:
        raise JobFileError("truncated program header")
    magic, mode_code, address_unit, ox, oy, base_dose, count = (
        _PROGRAM_HEADER.unpack_from(data, 0)
    )
    if magic != PROGRAM_MAGIC:
        raise JobFileError(f"bad program magic {magic!r}")
    if mode_code not in _PROGRAM_MODE_NAMES:
        raise JobFileError(f"unknown program mode code {mode_code}")
    offset = _PROGRAM_HEADER.size
    segments: List[ProgramSegment] = []
    for _ in range(count):
        if len(data) < offset + _PROGRAM_SEGMENT.size:
            raise JobFileError("truncated segment header")
        col, row, records, payload_bytes = _PROGRAM_SEGMENT.unpack_from(data, offset)
        offset += _PROGRAM_SEGMENT.size
        if len(data) < offset + payload_bytes:
            raise JobFileError("truncated segment payload")
        payload = data[offset : offset + payload_bytes]
        offset += payload_bytes
        segments.append(ProgramSegment((col, row), records, payload))
    if offset != len(data):
        raise JobFileError(
            f"trailing bytes after the last segment: {len(data) - offset}"
        )
    return ProgramImage(
        mode=_PROGRAM_MODE_NAMES[mode_code],
        address_unit=address_unit,
        origin=(ox, oy),
        base_dose=base_dose,
        segments=tuple(segments),
    )


def dumps_program(image: ProgramImage) -> bytes:
    """Serialize a :class:`ProgramImage` (the round-trip inverse)."""
    chunks = [
        pack_program_header(
            image.mode,
            image.address_unit,
            image.origin,
            image.base_dose,
            len(image.segments),
        )
    ]
    for seg in image.segments:
        chunks.append(pack_program_segment(seg.index, seg.record_count, seg.payload))
    return b"".join(chunks)


def read_program(path: Union[str, Path]) -> ProgramImage:
    """Read and parse a machine-program file."""
    return loads_program(Path(path).read_bytes())


# ---------------------------------------------------------------------------
# Shard-result payloads (cache storage)
# ---------------------------------------------------------------------------
#
# Unlike the machine tape above, cache payloads must reproduce a cold
# run *byte for byte*, so nothing is quantized: every coordinate and
# dose is stored as its exact IEEE-754 double.  The fracture report is
# stored alongside the shots so a warm run merges the same aggregate
# bookkeeping a cold run would.

SHARD_MAGIC = b"EBC1"
#: header: magic, payload version, shot count, field index (col, row).
_SHARD_HEADER = struct.Struct(">4sIIii")
#: reference_area plus the nine FractureReport fields.
_SHARD_REPORT = struct.Struct(">dqddqddddq")
#: y_bottom, y_top, x_bottom_left, x_bottom_right, x_top_left,
#: x_top_right, dose — exact doubles.
_SHARD_RECORD = struct.Struct(">ddddddd")
#: fast-kernel fallback counters: coord_limit, rational_slab.
_SHARD_FALLBACKS = struct.Struct(">qq")
#: v2: the kernel fallback counters joined the payload (between the
#: report and the shot records) so warm runs report the same fast-path
#: observability a cold run would.
SHARD_PAYLOAD_VERSION = 2


def dumps_shard_result(result) -> bytes:
    """Serialize a :class:`~repro.core.executor.ShardResult` exactly."""
    from repro.core.executor import ShardResult

    if not isinstance(result, ShardResult):
        raise JobFileError(f"expected a ShardResult, got {type(result)!r}")
    report = result.report
    chunks = [
        _SHARD_HEADER.pack(
            SHARD_MAGIC,
            SHARD_PAYLOAD_VERSION,
            len(result.shots),
            result.index[0],
            result.index[1],
        ),
        _SHARD_REPORT.pack(
            result.reference_area,
            report.figure_count,
            report.total_area,
            report.rectangle_fraction,
            report.sliver_count,
            report.sliver_fraction,
            report.min_dimension,
            report.mean_area,
            report.area_error,
            report.rectangle_count,
        ),
        _SHARD_FALLBACKS.pack(
            result.kernel_fallbacks.coord_limit,
            result.kernel_fallbacks.rational_slab,
        ),
    ]
    for shot in result.shots:
        t = shot.trapezoid
        chunks.append(
            _SHARD_RECORD.pack(
                t.y_bottom,
                t.y_top,
                t.x_bottom_left,
                t.x_bottom_right,
                t.x_top_left,
                t.x_top_right,
                shot.dose,
            )
        )
    return b"".join(chunks)


def loads_shard_result(data: bytes):
    """Parse a shard-result payload written by :func:`dumps_shard_result`.

    Raises:
        JobFileError: on bad magic, unknown version or truncation — the
            cache treats these as misses and evicts the entry.
    """
    from repro.core.executor import ShardResult
    from repro.fracture.quality import FractureReport
    from repro.geometry.scanline_fast import KernelFallbacks

    if len(data) < _SHARD_HEADER.size:
        raise JobFileError("truncated shard header")
    magic, version, count, col, row = _SHARD_HEADER.unpack_from(data, 0)
    if magic != SHARD_MAGIC:
        raise JobFileError(f"bad shard magic {magic!r}")
    if version != SHARD_PAYLOAD_VERSION:
        raise JobFileError(f"unknown shard payload version {version}")
    expected = (
        _SHARD_HEADER.size
        + _SHARD_REPORT.size
        + _SHARD_FALLBACKS.size
        + count * _SHARD_RECORD.size
    )
    if len(data) != expected:
        raise JobFileError(
            f"shard payload size mismatch: need {expected} bytes, "
            f"have {len(data)}"
        )
    offset = _SHARD_HEADER.size
    (
        reference_area,
        figure_count,
        total_area,
        rectangle_fraction,
        sliver_count,
        sliver_fraction,
        min_dimension,
        mean_area,
        area_error,
        rectangle_count,
    ) = _SHARD_REPORT.unpack_from(data, offset)
    offset += _SHARD_REPORT.size
    coord_fb, slab_fb = _SHARD_FALLBACKS.unpack_from(data, offset)
    offset += _SHARD_FALLBACKS.size
    shots: List[Shot] = []
    for _ in range(count):
        y0, y1, xbl, xbr, xtl, xtr, dose = _SHARD_RECORD.unpack_from(
            data, offset
        )
        offset += _SHARD_RECORD.size
        shots.append(Shot(Trapezoid(y0, y1, xbl, xbr, xtl, xtr), dose))
    report = FractureReport(
        figure_count=figure_count,
        total_area=total_area,
        rectangle_fraction=rectangle_fraction,
        sliver_count=sliver_count,
        sliver_fraction=sliver_fraction,
        min_dimension=min_dimension,
        mean_area=mean_area,
        area_error=area_error,
        rectangle_count=rectangle_count,
    )
    return ShardResult(
        index=(col, row),
        shots=shots,
        report=report,
        reference_area=reference_area,
        kernel_fallbacks=KernelFallbacks(coord_fb, slab_fb),
    )

"""Binary machine job file: the "pattern tape" format.

Pattern generators consumed a flat binary stream of dosed figures.  This
module defines a compact period-flavoured format and a reader/writer:

Header (32 bytes)::

    magic   4s   b"EBJ1"
    unit    d    layout units per count (e.g. 1e-3 µm)
    dose    d    base dose [µC/cm²]
    count   I    number of figure records
    pad     4x

Figure record (20 bytes), coordinates as signed 32-bit counts::

    y_bottom, y_top            2 × i
    x_bottom_left, x_bottom_right  (stored as i at the record's scale)
    x_top_left, x_top_right    packed as deltas vs. the bottom edge (h)
    dose_milli                 H   relative dose × 1000

The delta packing is exact for the slant range the fracturers produce
(|Δx| < 32767 counts); the writer verifies and raises otherwise.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import List, Union

from repro.core.job import MachineJob
from repro.fracture.base import Shot
from repro.geometry.trapezoid import Trapezoid

MAGIC = b"EBJ1"
_HEADER = struct.Struct(">4sddI4x")
_RECORD = struct.Struct(">iiiihhH")


class JobFileError(ValueError):
    """Raised for malformed job files or unrepresentable jobs."""


def dumps_job(job: MachineJob, unit: float = 1e-3) -> bytes:
    """Serialize a machine job to bytes.

    Args:
        job: the job (explicit shots required — aggregate jobs cannot be
            serialized).
        unit: coordinate quantum in layout units (1 nm for µm layouts).
    """
    if unit <= 0:
        raise JobFileError("unit must be positive")
    chunks = [
        _HEADER.pack(MAGIC, unit, job.base_dose, len(job.shots))
    ]
    for shot in job.shots:
        chunks.append(_pack_shot(shot, unit))
    return b"".join(chunks)


def _pack_shot(shot: Shot, unit: float) -> bytes:
    t = shot.trapezoid

    def q(v: float) -> int:
        return int(round(v / unit))

    y0, y1 = q(t.y_bottom), q(t.y_top)
    xbl, xbr = q(t.x_bottom_left), q(t.x_bottom_right)
    dtl = q(t.x_top_left) - xbl
    dtr = q(t.x_top_right) - xbr
    if not (-32768 <= dtl <= 32767 and -32768 <= dtr <= 32767):
        raise JobFileError(
            f"slant delta out of int16 range: {dtl}, {dtr} counts"
        )
    dose_milli = int(round(shot.dose * 1000.0))
    if not (0 <= dose_milli <= 0xFFFF):
        raise JobFileError(f"dose {shot.dose} outside the representable range")
    return _RECORD.pack(y0, y1, xbl, xbr, dtl, dtr, dose_milli)


def loads_job(data: bytes, name: str = "jobfile") -> MachineJob:
    """Parse job-file bytes back into a :class:`MachineJob`.

    Raises:
        JobFileError: on bad magic, truncation, or inconsistent counts.
    """
    if len(data) < _HEADER.size:
        raise JobFileError("truncated header")
    magic, unit, base_dose, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise JobFileError(f"bad magic {magic!r}")
    expected = _HEADER.size + count * _RECORD.size
    if len(data) < expected:
        raise JobFileError(
            f"truncated records: need {expected} bytes, have {len(data)}"
        )
    shots: List[Shot] = []
    offset = _HEADER.size
    for _ in range(count):
        y0, y1, xbl, xbr, dtl, dtr, dose_milli = _RECORD.unpack_from(
            data, offset
        )
        offset += _RECORD.size
        if y1 <= y0:
            raise JobFileError("record with non-positive height")
        trapezoid = Trapezoid(
            y0 * unit,
            y1 * unit,
            xbl * unit,
            xbr * unit,
            (xbl + dtl) * unit,
            (xbr + dtr) * unit,
        )
        shots.append(Shot(trapezoid, dose_milli / 1000.0))
    return MachineJob(shots, base_dose=base_dose, name=name)


def write_job(job: MachineJob, path: Union[str, Path], unit: float = 1e-3) -> int:
    """Write a job file; returns the byte count."""
    data = dumps_job(job, unit=unit)
    Path(path).write_bytes(data)
    return len(data)


def read_job(path: Union[str, Path]) -> MachineJob:
    """Read a job file."""
    p = Path(path)
    return loads_job(p.read_bytes(), name=p.stem)


def job_file_bytes(figure_count: int) -> int:
    """Size of a job file with ``figure_count`` records."""
    return _HEADER.size + figure_count * _RECORD.size

"""Machine-architecture comparison harness (experiment T1)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.pipeline import PreparationPipeline
from repro.fracture.base import Fracturer
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout.library import Library
from repro.machine.base import Machine


@dataclass
class MachineComparison:
    """One row of the T1 table: a workload timed on every machine.

    Attributes:
        workload: workload name.
        density: pattern density of the job.
        figure_counts: machine name → figure count used for that machine.
        times: machine name → total write time [s].
        winner: machine with the lowest total time.
    """

    workload: str
    density: float
    figure_counts: Dict[str, int]
    times: Dict[str, float]

    @property
    def winner(self) -> str:
        return min(self.times, key=self.times.get)

    def row(self) -> str:
        cells = " ".join(f"{self.times[k]:>12.3f}" for k in sorted(self.times))
        return f"{self.workload:<16s} {self.density:7.1%} {cells}  -> {self.winner}"


def compare_machines(
    workloads: Sequence[tuple],
    machines: Sequence[Machine],
    base_dose: float = 1.0,
    fracturers: Optional[Dict[str, Fracturer]] = None,
) -> List[MachineComparison]:
    """Time every workload on every machine.

    Args:
        workloads: ``(name, Library)`` pairs.
        machines: machines to compare.
        base_dose: physical dose [µC/cm²].
        fracturers: per-machine fracturer override (machine name → fracturer);
            VSB machines default to a shot fracturer matched to their
            maximum shot size, others to the trapezoid fracturer.

    Returns:
        One :class:`MachineComparison` per workload.
    """
    fracturers = dict(fracturers or {})
    results: List[MachineComparison] = []
    for name, library in workloads:
        times: Dict[str, float] = {}
        figure_counts: Dict[str, int] = {}
        density = 0.0
        for machine in machines:
            fracturer = fracturers.get(machine.name)
            if fracturer is None:
                max_shot = getattr(machine, "max_shot", None)
                if max_shot is not None:
                    fracturer = ShotFracturer(max_shot=max_shot)
                else:
                    fracturer = TrapezoidFracturer()
            pipeline = PreparationPipeline(
                fracturer=fracturer, machines=[machine], base_dose=base_dose
            )
            result = pipeline.run(library, name=name)
            times[machine.name] = result.write_times[machine.name].total
            figure_counts[machine.name] = result.job.figure_count()
            density = result.job.pattern_density()
        results.append(
            MachineComparison(
                workload=name,
                density=density,
                figure_counts=figure_counts,
                times=times,
            )
        )
    return results

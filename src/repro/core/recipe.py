"""A preparation recipe: the pipeline knobs as a validated value object.

The CLI and the prep service accept the same set of pipeline knobs
(fracturing strategy, PEC configuration, sharding, hierarchy handling,
machine-program export).  Both front-ends build their
:class:`~repro.core.pipeline.PreparationPipeline` through this one
module, so a job submitted over HTTP runs *the same code path* as the
identical CLI invocation — the byte-identity contract between the two
holds by construction, not by keeping two builders in sync.

A :class:`PrepRecipe` is a frozen dataclass: validation happens once at
construction with clean ``ValueError`` messages (the CLI turns them
into non-zero exits, the service into ``400`` responses), and the
recipe is hashable/comparable so callers can dedupe identical requests.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from pathlib import Path
from typing import Optional, Union

FRACTURE_MODES = ("trapezoid", "vsb")
PEC_MATRIX_MODES = ("dense", "sparse", "hybrid")
HIERARCHY_MODES = ("flat", "cells")
MACHINE_MODES = ("raster", "vsb", "vector")
DISPATCH_MODES = ("local", "distributed")


@dataclass(frozen=True)
class PrepRecipe:
    """Every pipeline knob of one preparation request.

    Mirrors the ``prep``/``demo`` CLI options one-to-one; see
    :class:`~repro.core.pipeline.PreparationPipeline` for the semantics
    of each knob.  All values are validated at construction.
    """

    fracture: str = "trapezoid"
    max_shot: float = 2.0
    pec: bool = False
    pec_matrix: str = "dense"
    pec_grid_cell: Optional[float] = None
    energy: float = 20.0
    dose: float = 1.0
    workers: int = 1
    field_size: Optional[float] = None
    hierarchy: str = "flat"
    machine: Optional[str] = None
    address_unit: float = 0.5
    shard_retries: int = 2
    shard_timeout: Optional[float] = None
    dispatch: str = "local"
    workers_endpoint: Optional[str] = None
    streaming: bool = False

    def __post_init__(self) -> None:
        if self.fracture not in FRACTURE_MODES:
            raise ValueError(
                f"fracture must be one of {FRACTURE_MODES}, "
                f"got {self.fracture!r}"
            )
        if self.pec_matrix not in PEC_MATRIX_MODES:
            raise ValueError(
                f"pec_matrix must be one of {PEC_MATRIX_MODES}, "
                f"got {self.pec_matrix!r}"
            )
        if self.hierarchy not in HIERARCHY_MODES:
            raise ValueError(
                f"hierarchy must be one of {HIERARCHY_MODES}, "
                f"got {self.hierarchy!r}"
            )
        if self.machine is not None and self.machine not in MACHINE_MODES:
            raise ValueError(
                f"machine must be one of {MACHINE_MODES} or None, "
                f"got {self.machine!r}"
            )
        for name in ("max_shot", "energy", "dose", "address_unit"):
            value = getattr(self, name)
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        for name in ("pec_grid_cell", "field_size"):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(f"{name} must be a number, got {value!r}")
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value!r}")
        if isinstance(self.workers, bool) or not isinstance(self.workers, int):
            raise ValueError(f"workers must be an int, got {self.workers!r}")
        if self.workers < 0:
            raise ValueError(
                "workers must be >= 1 (or 0 for one worker per core), "
                f"got {self.workers!r}"
            )
        if not isinstance(self.pec, bool):
            raise ValueError(f"pec must be a bool, got {self.pec!r}")
        if isinstance(self.shard_retries, bool) or not isinstance(
            self.shard_retries, int
        ):
            raise ValueError(
                f"shard_retries must be an int, got {self.shard_retries!r}"
            )
        if self.shard_retries < 0:
            raise ValueError(
                f"shard_retries must be >= 0, got {self.shard_retries!r}"
            )
        if self.shard_timeout is not None:
            if not isinstance(self.shard_timeout, (int, float)) or isinstance(
                self.shard_timeout, bool
            ):
                raise ValueError(
                    f"shard_timeout must be a number, got {self.shard_timeout!r}"
                )
            if self.shard_timeout <= 0:
                raise ValueError(
                    f"shard_timeout must be positive, got {self.shard_timeout!r}"
                )
        if self.dispatch not in DISPATCH_MODES:
            raise ValueError(
                f"dispatch must be one of {DISPATCH_MODES}, "
                f"got {self.dispatch!r}"
            )
        if self.workers_endpoint is not None:
            from repro.dist.protocol import parse_endpoint

            if not isinstance(self.workers_endpoint, str):
                raise ValueError(
                    f"workers_endpoint must be a host:port string, "
                    f"got {self.workers_endpoint!r}"
                )
            parse_endpoint(self.workers_endpoint)
        if self.dispatch == "distributed" and self.workers_endpoint is None:
            raise ValueError(
                "dispatch='distributed' requires a workers_endpoint "
                "(host:port of the lease coordinator)"
            )
        if not isinstance(self.streaming, bool):
            raise ValueError(f"streaming must be a bool, got {self.streaming!r}")
        if self.streaming and self.hierarchy == "cells":
            raise ValueError(
                "streaming=True requires hierarchy='flat': per-cell "
                "prefracture materializes the hierarchy, which defeats "
                "the out-of-core contract"
            )

    def to_dict(self) -> dict:
        """The recipe as a plain JSON-serializable mapping."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: dict) -> "PrepRecipe":
        """Build a recipe from a mapping, rejecting unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown recipe option(s): {', '.join(unknown)}; "
                f"valid options are {', '.join(sorted(known))}"
            )
        return cls(**payload)

    def build_pipeline(
        self,
        cache=None,
        cache_dir: Optional[Union[str, Path]] = None,
        program_dir: Optional[Union[str, Path]] = None,
        progress=None,
        waiter=None,
    ):
        """Construct the pipeline this recipe describes.

        ``cache`` (an existing :class:`~repro.core.cache.ShardCache`,
        e.g. the service's shared one) wins over ``cache_dir``;
        ``progress`` is the per-shard completion callback threaded into
        the execution engine (see :mod:`repro.core.executor`);
        ``waiter`` is an optional
        :class:`~repro.core.executor.BackoffWaiter` making retry
        backoffs interruptible (the service's cancel/timeout path).
        """
        from repro.core.executor import RetryPolicy
        from repro.core.faults import FaultPlan
        from repro.core.pipeline import PreparationPipeline
        from repro.fracture.shots import ShotFracturer
        from repro.fracture.trapezoidal import TrapezoidFracturer
        from repro.machine.raster import RasterScanWriter
        from repro.machine.vector import VectorScanWriter
        from repro.machine.vsb import ShapedBeamWriter
        from repro.pec.dose_iter import IterativeDoseCorrector
        from repro.physics.psf import psf_for

        machines = [
            RasterScanWriter(),
            VectorScanWriter(),
            ShapedBeamWriter(),
        ]
        if self.fracture == "vsb":
            fracturer = ShotFracturer(max_shot=self.max_shot)
        else:
            fracturer = TrapezoidFracturer()
        corrector = None
        psf = None
        if self.pec:
            psf = psf_for(self.energy)
            corrector = IterativeDoseCorrector(
                matrix_mode=self.pec_matrix, grid_cell=self.pec_grid_cell
            )
        return PreparationPipeline(
            fracturer=fracturer,
            corrector=corrector,
            psf=psf,
            machines=machines,
            base_dose=self.dose,
            workers=self.workers,
            field_size=self.field_size,
            cache=cache,
            cache_dir=None if cache is not None else cache_dir,
            hierarchy=self.hierarchy,
            machine=self.machine,
            address_unit=self.address_unit,
            program_dir=program_dir,
            progress=progress,
            retry=RetryPolicy(
                max_attempts=self.shard_retries + 1,
                shard_timeout=self.shard_timeout,
            ),
            faults=FaultPlan.from_env(),
            dispatch=self.dispatch,
            workers_endpoint=self.workers_endpoint,
            waiter=waiter,
        )

"""Command-line interface: ``repro-ebl``.

Subcommands:

* ``prep`` — run the data-preparation pipeline on a GDSII file and print
  the fracture report and per-machine write-time estimates.
* ``stats`` — hierarchy statistics of a GDSII file.
* ``demo`` — run the pipeline on a built-in synthetic workload.
* ``work`` — run a distributed shard-worker daemon against a lease
  coordinator (see ``--dispatch distributed`` and :mod:`repro.dist`).
* ``serve`` — run the prep-as-a-service HTTP job server.

Bad inputs (invalid knob values, unknown workloads, unreadable files)
exit non-zero with a one-line ``error:`` message on stderr — never a
traceback — so smoke scripts and CI fail loudly and readably.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import Table
from repro.core.pipeline import PreparationPipeline
from repro.core.recipe import PrepRecipe
from repro.layout import generators
from repro.layout.gdsii import read_gdsii
from repro.layout.stats import library_stats


def _worker_count(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError(
            "must be >= 1 (or 0 for one worker per core)"
        )
    return value


def _positive_float(text: str) -> float:
    value = float(text)
    if value <= 0:
        raise argparse.ArgumentTypeError("must be positive")
    return value


def _nonneg_int(text: str) -> int:
    value = int(text)
    if value < 0:
        raise argparse.ArgumentTypeError("must be >= 0")
    return value


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _recipe_from_args(args: argparse.Namespace) -> PrepRecipe:
    """The CLI options as a :class:`~repro.core.recipe.PrepRecipe` —
    the same value object the prep service builds its pipelines from,
    so HTTP and CLI runs share one construction path."""
    return PrepRecipe(
        fracture=args.fracture,
        max_shot=args.max_shot,
        pec=args.pec,
        pec_matrix=args.pec_matrix,
        pec_grid_cell=args.pec_grid_cell,
        energy=args.energy,
        dose=args.dose,
        workers=args.workers,
        field_size=args.field_size,
        hierarchy=args.hierarchy,
        machine=args.machine,
        address_unit=args.address_unit,
        shard_retries=args.shard_retries,
        shard_timeout=args.shard_timeout,
        dispatch=args.dispatch,
        workers_endpoint=args.workers_endpoint,
        streaming=args.stream,
    )


def _build_pipeline(args: argparse.Namespace) -> PreparationPipeline:
    cache_dir = None if args.no_cache else args.cache_dir
    return _recipe_from_args(args).build_pipeline(cache_dir=cache_dir)


def _program_path(args: argparse.Namespace) -> Optional[str]:
    """Explicit machine-program path: ``--machine-output``, or derived
    from ``--output``.  ``None`` lets the pipeline derive its sanitized
    default from the job name."""
    if not args.machine:
        return None
    if args.machine_output:
        return args.machine_output
    if getattr(args, "output", None):
        from pathlib import Path

        return str(Path(args.output).with_suffix(f".{args.machine}.ebp"))
    return None


def _maybe_write_output(result, args: argparse.Namespace) -> None:
    output = getattr(args, "output", None)
    if not output:
        return
    from repro.core.jobfile import write_job

    n = write_job(result.job, output)
    print(f"wrote machine job file {output} ({n:,} bytes)")


def _print_result(result, pec_matrix=None) -> None:
    job = result.job
    report = result.fracture_report
    print(f"job: {job.name}")
    stats = result.execution
    if stats is not None and stats.shard_count > 1:
        mode = "parallel" if stats.parallel else "serial"
        print(
            f"  shards:    {stats.occupied_shards}/{stats.shard_count} "
            f"occupied ({stats.field_size:g} µm fields, "
            f"{stats.workers} workers, {mode})"
        )
    if stats is not None and stats.hierarchy == "cells":
        print(
            f"  hierarchy: {stats.cells_fractured} cells fractured, "
            f"{stats.instances_reused} instances reused, "
            f"{stats.instances_fallback} fallback"
        )
    if stats is not None and stats.cache_enabled:
        lookups = stats.cache_hits + stats.cache_misses
        rate = stats.cache_hits / lookups if lookups else 0.0
        evicted = (
            f", {stats.cache_evictions} evicted" if stats.cache_evictions else ""
        )
        print(
            f"  cache:     {stats.cache_hits} hits, "
            f"{stats.cache_misses} misses ({rate:.0%} hit rate){evicted}"
        )
    if stats is not None and stats.streamed:
        spill = (
            f"{stats.shards_spilled} shards spilled "
            f"({stats.spill_bytes:,} bytes)"
            if stats.shards_spilled
            else "no shards spilled"
        )
        fallback = (
            f", {stats.spill_fallbacks} held resident (spill degraded)"
            if stats.spill_fallbacks
            else ""
        )
        print(
            f"  memory:    streamed in {stats.stream_windows} windows, "
            f"peak {stats.peak_window_bytes:,} bytes resident, "
            f"{spill}{fallback}"
        )
    if stats is not None and stats.fault_events:
        degraded = " (cache degraded to read-only)" if stats.cache_degraded else ""
        print(
            f"  faults:    {stats.shard_retries} shard retries, "
            f"{stats.shards_salvaged} salvaged, "
            f"{stats.pool_restarts} pool restarts, "
            f"{stats.shard_timeouts} timeouts, "
            f"{stats.cache_write_failures} cache write failures{degraded}"
        )
    if stats is not None and stats.dispatch == "distributed":
        print(
            f"  dist:      {stats.dist_workers} workers, "
            f"{stats.leases_granted} leases granted, "
            f"{stats.leases_reclaimed} reclaimed, "
            f"{stats.worker_deaths} deaths, "
            f"{stats.heartbeats_missed} heartbeats missed, "
            f"{stats.speculative_wins}/{stats.speculative_losses} "
            f"speculative wins/losses, "
            f"{stats.duplicate_commits} duplicate commits, "
            f"{stats.dist_local_fallbacks} local fallbacks"
        )
    if stats is not None and stats.kernel_fallbacks:
        print(
            f"  kernel:    {stats.kernel_fallbacks} fast-path fallbacks "
            f"({stats.kernel_coord_fallbacks} coord-limit, "
            f"{stats.kernel_slab_fallbacks} rational-slab)"
        )
    print(f"  digest:    {job.digest()}")
    print(f"  figures:   {report.figure_count}")
    print(f"  area:      {report.total_area:.2f} µm²")
    print(f"  density:   {job.pattern_density():.1%}")
    print(f"  slivers:   {report.sliver_fraction:.2%}")
    if result.corrected:
        lo, hi = job.dose_range()
        print(f"  dose range: {lo:.3f} – {hi:.3f}")
        if pec_matrix is not None:
            print(f"  pec matrix: {pec_matrix}")
    program = result.machine_program
    if program is not None:
        print(
            f"  machine:   {program.mode} program {program.path} "
            f"({program.segment_count} segments)"
        )
        if program.mode == "raster":
            detail = f"{program.run_count:,} runs / {program.line_count:,} lines"
        else:
            detail = f"{program.figure_count:,} shot records"
        print(
            f"    stream:   {program.stream_bytes:,} bytes exact "
            f"(estimate {program.estimate_bytes:,}), {detail}"
        )
        if stats is not None and stats.cache_enabled:
            print(
                f"    cache:    {program.cache_hits} hits, "
                f"{program.cache_misses} misses"
            )
        bd = program.breakdown
        print(
            f"    write:    exposure {bd.exposure:.3g} s + overhead "
            f"{bd.figure_overhead:.3g} s + stage {bd.stage:.3g} s + "
            f"cal {bd.calibration:.3g} s + data {bd.data_limited_extra:.3g} s "
            f"= {bd.total:.3g} s"
        )
        ch = program.channel
        verdict = f"LIMITED (x{ch.slowdown:.2f} slowdown)" if ch.limited else "ok"
        print(
            f"    channel:  {ch.required_rate / 1e6:.2f} MB/s required vs "
            f"{ch.channel_rate / 1e6:.2f} MB/s available ({verdict})"
        )
    table = Table(
        ["machine", "exposure [s]", "overhead [s]", "stage [s]", "total [s]"]
    )
    for name, bd in sorted(result.write_times.items()):
        table.add_row(
            [name, bd.exposure, bd.figure_overhead, bd.stage, bd.total]
        )
    print(table.render())


def cmd_prep(args: argparse.Namespace) -> int:
    pipeline = _build_pipeline(args)
    if args.stream:
        result = pipeline.run_streaming(
            args.gdsii,
            program_path=_program_path(args),
            job_path=args.output or None,
        )
        _print_result(result, pec_matrix=args.pec_matrix if args.pec else None)
        if args.output:
            print(
                f"wrote machine job file {args.output} "
                f"({result.job_bytes:,} bytes)"
            )
        return 0
    library = read_gdsii(args.gdsii)
    result = pipeline.run(library, program_path=_program_path(args))
    _print_result(result, pec_matrix=args.pec_matrix if args.pec else None)
    _maybe_write_output(result, args)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    library = read_gdsii(args.gdsii)
    stats = library_stats(library)
    print(f"library: {library.name}")
    print(f"  cells:                {stats.cell_count}")
    print(f"  references:           {stats.reference_count}")
    print(f"  instances:            {stats.instance_count}")
    print(f"  depth:                {stats.depth}")
    print(f"  polygons (stored):    {stats.hierarchical_polygons}")
    print(f"  polygons (flat):      {stats.flat_polygons}")
    print(f"  compaction ratio:     {stats.compaction_ratio:.1f}x")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import create_server

    work_dir = Path(args.work_dir)
    if args.no_cache:
        cache_dir = None
    elif args.cache_dir is not None:
        cache_dir = args.cache_dir
    else:
        cache_dir = work_dir / "shard-cache"
    server = create_server(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        work_dir=work_dir,
        concurrency=args.concurrency,
    )
    host, port = server.server_address[:2]
    print(f"prep service listening on http://{host}:{port}")
    print(f"  work dir:    {work_dir}")
    print(f"  shard cache: {cache_dir if cache_dir is not None else 'disabled'}")
    print(f"  concurrency: {args.concurrency} job(s)")
    print(
        "  endpoints:   POST /jobs · GET /jobs/{id} · "
        "GET /jobs/{id}/result · DELETE /jobs/{id} · "
        "GET /healthz /readyz /stats"
    )
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    finally:
        server.stop()
    return 0


def cmd_work(args: argparse.Namespace) -> int:
    from repro.dist.protocol import parse_endpoint
    from repro.dist.worker import run_worker

    parse_endpoint(args.connect)
    return run_worker(
        args.connect, cache_dir=args.cache_dir, idle_exit=args.idle_exit
    )


def cmd_demo(args: argparse.Namespace) -> int:
    if args.workload == "full_reticle":
        # The out-of-core showcase: a tiles×tiles zone-plate mosaic,
        # sized by --tiles instead of baked into the workload table.
        source = generators.full_reticle(tiles=args.tiles)
    else:
        workloads = dict(generators.all_workloads())
        if args.workload not in workloads:
            print(
                f"unknown workload {args.workload!r}; choose from "
                f"{sorted(workloads) + ['full_reticle']}",
                file=sys.stderr,
            )
            return 2
        source = workloads[args.workload]
    pipeline = _build_pipeline(args)
    if args.stream:
        result = pipeline.run_streaming(
            source,
            name=args.workload,
            program_path=_program_path(args),
            job_path=args.output or None,
        )
        _print_result(result, pec_matrix=args.pec_matrix if args.pec else None)
        if args.output:
            print(
                f"wrote machine job file {args.output} "
                f"({result.job_bytes:,} bytes)"
            )
        return 0
    result = pipeline.run(
        source,
        name=args.workload,
        program_path=_program_path(args),
    )
    _print_result(result, pec_matrix=args.pec_matrix if args.pec else None)
    _maybe_write_output(result, args)
    return 0


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fracture", choices=["trapezoid", "vsb"], default="trapezoid",
        help="fracturing strategy",
    )
    parser.add_argument(
        "--max-shot", type=_positive_float, default=2.0,
        help="VSB maximum shot [µm]",
    )
    parser.add_argument(
        "--pec", action="store_true", help="apply iterative dose correction"
    )
    parser.add_argument(
        "--pec-matrix", choices=["dense", "sparse", "hybrid"],
        default="dense",
        help="exposure-operator backend for --pec: dense (exact), "
        "sparse (exact entries, CSR memory) or hybrid (exact forward "
        "term + FFT backscatter grid)",
    )
    parser.add_argument(
        "--pec-grid-cell", type=_positive_float, default=None, metavar="UM",
        help="backscatter grid cell [µm] for --pec-matrix hybrid "
        "(default: beta/4)",
    )
    parser.add_argument(
        "--energy", type=_positive_float, default=20.0,
        help="beam energy [keV]",
    )
    parser.add_argument(
        "--dose", type=_positive_float, default=1.0,
        help="base dose [µC/cm²]",
    )
    parser.add_argument(
        "--output", metavar="FILE",
        help="write the prepared job as a binary machine job file",
    )
    parser.add_argument(
        "--workers", type=_worker_count, default=1, metavar="N",
        help="worker processes for the sharded execution engine "
        "(1 = serial, 0 = one per core; never changes the result)",
    )
    parser.add_argument(
        "--field-size", type=_positive_float, default=None, metavar="UM",
        help="writing-field pitch [µm] for layout sharding "
        "(default: process the layout as one shard)",
    )
    parser.add_argument(
        "--hierarchy", choices=["flat", "cells"], default="flat",
        help="hierarchical-source handling: flat (expand every "
        "placement, fracture per shard) or cells (fracture each cell "
        "once, replicate figures per placement — the array-reuse fast "
        "path)",
    )
    parser.add_argument(
        "--machine", choices=["raster", "vsb", "vector"], default=None,
        help="lower the prepared job into an on-disk machine program: "
        "raster (per-scanline RLE runs, exact stream size), vsb or "
        "vector (per-shot dose/flash records); prints the write-time "
        "breakdown and channel check",
    )
    parser.add_argument(
        "--address-unit", type=_positive_float, default=0.5, metavar="UM",
        help="raster address (pixel) pitch [µm] for --machine raster",
    )
    parser.add_argument(
        "--machine-output", metavar="FILE", default=None,
        help="machine program file (default: derived from --output or "
        "the job name, extension .<mode>.ebp)",
    )
    parser.add_argument(
        "--shard-retries", type=_nonneg_int, default=2, metavar="N",
        help="re-dispatch attempts per shard after a transient worker "
        "failure (crash, broken pool, OSError) before the run escalates "
        "(default: 2; results stay byte-identical across retries)",
    )
    parser.add_argument(
        "--shard-timeout", type=_positive_float, default=None, metavar="SEC",
        help="per-shard wall-clock budget; a shard exceeding it is "
        "treated as hung, the worker pool is recycled and the victim "
        "re-enqueued (default: wait forever)",
    )
    parser.add_argument(
        "--dispatch", choices=["local", "distributed"], default="local",
        help="shard scheduling: local (this process's pool) or "
        "distributed (lease shards to worker daemons on "
        "--workers-endpoint; byte-identical to local, with the local "
        "pool as the fallback rung)",
    )
    parser.add_argument(
        "--workers-endpoint", metavar="HOST:PORT", default=None,
        help="lease-coordinator endpoint for --dispatch distributed "
        "(workers connect with: repro-ebl work --connect HOST:PORT)",
    )
    parser.add_argument(
        "--stream", action="store_true",
        help="run out of core: read the layout through a cursor, keep "
        "only one shard window resident, spill shard results through "
        "the cache's blob store and assemble artifacts one shard at a "
        "time (byte-identical to the in-memory path)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="content-addressed shard cache directory; repeat runs "
        "re-compute only shards whose inputs changed (results are "
        "byte-identical either way)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="bypass the shard cache even if --cache-dir is given",
    )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    parser = argparse.ArgumentParser(
        prog="repro-ebl",
        description="Electron-beam lithography data preparation toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_prep = sub.add_parser("prep", help="prepare a GDSII file for writing")
    p_prep.add_argument("gdsii", help="input GDSII stream file")
    _add_common(p_prep)
    p_prep.set_defaults(func=cmd_prep)

    p_stats = sub.add_parser("stats", help="hierarchy statistics of a GDSII file")
    p_stats.add_argument("gdsii", help="input GDSII stream file")
    p_stats.set_defaults(func=cmd_stats)

    p_demo = sub.add_parser("demo", help="run on a built-in workload")
    p_demo.add_argument(
        "--workload", default="grating",
        help="workload name (see generators; 'full_reticle' is the "
        "sized out-of-core mosaic, see --tiles)",
    )
    p_demo.add_argument(
        "--tiles", type=_positive_int, default=10, metavar="N",
        help="mosaic edge for --workload full_reticle: an N×N array of "
        "zone-plate dies (default 10 → 100 dies)",
    )
    _add_common(p_demo)
    p_demo.set_defaults(func=cmd_demo)

    p_work = sub.add_parser(
        "work", help="run a distributed shard-worker daemon"
    )
    p_work.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="lease-coordinator endpoint to pull shard work from",
    )
    p_work.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared shard-cache directory to store results in "
        "(idempotent: same key, same bytes)",
    )
    p_work.add_argument(
        "--idle-exit", type=_positive_float, default=None, metavar="SEC",
        help="exit after this long without work (default: run forever)",
    )
    p_work.set_defaults(func=cmd_work)

    p_serve = sub.add_parser(
        "serve", help="run the prep-as-a-service HTTP job server"
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1", help="bind address"
    )
    p_serve.add_argument(
        "--port", type=int, default=8080,
        help="bind port (0 picks a free port)",
    )
    p_serve.add_argument(
        "--work-dir", default=".prep-service", metavar="DIR",
        help="artifact root for job results",
    )
    p_serve.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="shared shard-cache directory "
        "(default: <work-dir>/shard-cache)",
    )
    p_serve.add_argument(
        "--no-cache", action="store_true",
        help="serve without a shared shard cache",
    )
    p_serve.add_argument(
        "--concurrency", type=int, default=2, metavar="N",
        help="maximum jobs running at once",
    )
    p_serve.set_defaults(func=cmd_serve)

    args = parser.parse_args(argv)
    if getattr(args, "machine_output", None) and not getattr(args, "machine", None):
        parser.error("--machine-output requires --machine")
    try:
        return args.func(args)
    except (ValueError, OSError) as exc:
        # Bad inputs and unworkable option combinations exit with a
        # clean one-liner, not a traceback — smoke scripts and CI grep
        # stderr, they don't parse stack frames.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

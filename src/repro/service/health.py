"""Liveness and readiness probes for the prep service.

``/healthz`` (liveness) answers "is the process up and serving HTTP" —
it must stay cheap and dependency-free, so a wedged queue never makes
an orchestrator kill-loop the process.  ``/readyz`` (readiness) answers
"can this instance accept work right now": all queue workers alive and
the artifact/cache directories writable.  A not-ready instance keeps
serving status and results for jobs it already owns.
"""

from __future__ import annotations

import os
import time
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.app import PrepServer


def _writable(directory: Path) -> bool:
    """Probe a directory for writability by touching a unique file."""
    probe = directory / f".probe-{os.getpid()}-{uuid.uuid4().hex}"
    try:
        directory.mkdir(parents=True, exist_ok=True)
        probe.write_bytes(b"")
        probe.unlink()
        return True
    except OSError:
        return False


def liveness(server: "PrepServer") -> dict:
    """The ``/healthz`` body: process identity and uptime only."""
    return {
        "status": "ok",
        "service": "repro-prep-service",
        "uptime_s": round(time.time() - server.started_at, 3),
    }


def readiness(server: "PrepServer") -> Tuple[bool, dict]:
    """The ``/readyz`` verdict and per-check detail."""
    queue = server.queue
    checks = {
        "queue_workers": {
            "ok": queue.workers_alive() == queue.concurrency,
            "alive": queue.workers_alive(),
            "expected": queue.concurrency,
        },
        "work_dir": {
            "ok": _writable(Path(server.work_dir)),
            "path": str(server.work_dir),
        },
    }
    if server.cache is not None:
        checks["cache_dir"] = {
            "ok": _writable(Path(server.cache.root)),
            "path": str(server.cache.root),
        }
    ready = all(check["ok"] for check in checks.values())
    return ready, {"ready": ready, "checks": checks}

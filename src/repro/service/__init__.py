"""Prep-as-a-service: the HTTP job server over the preparation pipeline.

The batch CLI prepares one layout per invocation; this package turns
the same pipeline into a long-running shared facility — the operating
model of an e-beam data-prep installation, where many designs queue
against one preparation flow and one machine:

* :mod:`repro.service.schemas` — the JSON job-submission schema, parsed
  into a :class:`~repro.core.recipe.PrepRecipe` (the exact knob set the
  CLI exposes, built through the same code path).
* :mod:`repro.service.jobs` — the thread-safe in-memory job store and
  the job state machine (``queued → running → done | failed``, with
  ``cancelled`` for jobs pulled before they ran).
* :mod:`repro.service.queue` — the priority job queue with a
  concurrency limit, draining onto the persistent worker pool.
* :mod:`repro.service.runner` — runs one job through the pipeline with
  the server's *shared* content-addressed shard cache, so identical
  shards are never recomputed twice for anyone.
* :mod:`repro.service.health` — liveness/readiness probes.
* :mod:`repro.service.app` — the stdlib HTTP front-end
  (:func:`~repro.service.app.create_server`) binding it all together.

Determinism contract: a job submitted over HTTP produces byte-identical
``.ebj``/``.ebp`` artifacts and digests to the same job run via the
CLI — both front-ends build their pipeline from one
:class:`~repro.core.recipe.PrepRecipe`, and neither artifact format
embeds names, paths or timestamps.
"""

from repro.service.app import PrepServer, create_server
from repro.service.jobs import Job, JobStore
from repro.service.queue import JobQueue
from repro.service.runner import JobRunner
from repro.service.schemas import SchemaError, parse_job_spec

__all__ = [
    "PrepServer",
    "create_server",
    "Job",
    "JobStore",
    "JobQueue",
    "JobRunner",
    "SchemaError",
    "parse_job_spec",
]

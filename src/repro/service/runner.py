"""Runs one accepted job through the preparation pipeline.

The runner is where the service meets the existing engine: it builds
the pipeline from the job's :class:`~repro.core.recipe.PrepRecipe`
(the same builder the CLI uses), attaches the server's *shared*
content-addressed :class:`~repro.core.cache.ShardCache` — one cache
for all tenants, so identical shards are never computed twice for
anyone — and streams per-shard completion into the job store while the
engine works.

Artifacts land under ``<work_dir>/jobs/<job-id>/``: the ``.ebj``
machine job always, plus the ``.ebp`` machine program when the recipe
asks for one.  Both are written by the exact functions the CLI uses,
so HTTP and CLI runs of the same recipe are byte-identical.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Union

from repro.core.cache import ShardCache
from repro.core.executor import ExecutionStats
from repro.core.jobfile import write_job
from repro.service.jobs import Job, JobStore


def _stats_view(stats: Optional[ExecutionStats]) -> dict:
    """The JSON view of one run's :class:`ExecutionStats`."""
    if stats is None:
        return {}
    view = {
        "shard_count": stats.shard_count,
        "occupied_shards": stats.occupied_shards,
        "workers": stats.workers,
        "parallel": stats.parallel,
        "field_size": stats.field_size,
        "cache_enabled": stats.cache_enabled,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "hierarchy": stats.hierarchy,
        "kernel_fallbacks": stats.kernel_fallbacks,
        "kernel_coord_fallbacks": stats.kernel_coord_fallbacks,
        "kernel_slab_fallbacks": stats.kernel_slab_fallbacks,
    }
    if stats.hierarchy == "cells":
        view["cells_fractured"] = stats.cells_fractured
        view["instances_reused"] = stats.instances_reused
        view["instances_fallback"] = stats.instances_fallback
    return view


class JobRunner:
    """Executes jobs against one shared cache and one artifact tree.

    Args:
        store: job store receiving progress and results.
        work_dir: artifact root; each job gets its own subdirectory.
        cache: the shared shard cache (``None`` disables caching).
    """

    def __init__(
        self,
        store: JobStore,
        work_dir: Union[str, Path],
        cache: Optional[ShardCache] = None,
    ) -> None:
        self.store = store
        self.work_dir = Path(work_dir)
        self.cache = cache

    def workload_library(self, name: str):
        """Resolve a workload name to its library (fresh per job, so
        every run sees the identical deterministic geometry)."""
        from repro.layout import generators

        workloads = dict(generators.all_workloads())
        if name not in workloads:
            raise ValueError(
                f"unknown workload {name!r}; choose from {sorted(workloads)}"
            )
        return workloads[name]

    def job_dir(self, job_id: str) -> Path:
        return self.work_dir / "jobs" / job_id

    def __call__(self, job: Job) -> None:
        """Run ``job`` to completion and mark it done in the store.

        Exceptions propagate to the queue worker, which records them on
        the job — this method only handles the success path.
        """
        spec = job.spec
        library = self.workload_library(spec.workload)
        job_dir = self.job_dir(job.id)
        job_dir.mkdir(parents=True, exist_ok=True)

        def progress(done: int, total: int) -> None:
            self.store.update_progress(job.id, done, total)

        pipeline = spec.recipe.build_pipeline(
            cache=self.cache, progress=progress
        )
        program_path = None
        if spec.recipe.machine is not None:
            program_path = job_dir / f"program.{spec.recipe.machine}.ebp"
        result = pipeline.run(
            library, name=spec.job_name, program_path=program_path
        )
        job_path = job_dir / "job.ebj"
        job_bytes = write_job(result.job, job_path)

        summary = {
            "digest": result.job.digest(),
            "figure_count": result.fracture_report.figure_count,
            "source_polygons": result.source_polygons,
            "corrected": result.corrected,
            "job_bytes": job_bytes,
            "execution": _stats_view(result.execution),
        }
        program = result.machine_program
        if program is not None:
            summary["program"] = {
                "mode": program.mode,
                "digest": program.digest,
                "stream_bytes": program.stream_bytes,
                "file_bytes": program.file_bytes,
                "segment_count": program.segment_count,
                "cache_hits": program.cache_hits,
                "cache_misses": program.cache_misses,
            }
        self.store.to_done(
            job.id,
            summary,
            job_path=str(job_path),
            program_path=str(program_path) if program_path else None,
        )

"""Runs one accepted job through the preparation pipeline.

The runner is where the service meets the existing engine: it builds
the pipeline from the job's :class:`~repro.core.recipe.PrepRecipe`
(the same builder the CLI uses), attaches the server's *shared*
content-addressed :class:`~repro.core.cache.ShardCache` — one cache
for all tenants, so identical shards are never computed twice for
anyone — and streams per-shard completion into the job store while the
engine works.

Artifacts land under ``<work_dir>/jobs/<job-id>/``: the ``.ebj``
machine job always, plus the ``.ebp`` machine program when the recipe
asks for one.  Both are written by the exact functions the CLI uses,
so HTTP and CLI runs of the same recipe are byte-identical.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Optional, Union

from repro.core.cache import ShardCache
from repro.core.executor import BackoffWaiter, ExecutionStats
from repro.core.jobfile import write_job
from repro.service.jobs import Job, JobStore


class JobCancelled(Exception):
    """Raised inside a run when a cooperative cancel request lands."""


class JobTimeoutError(Exception):
    """Raised inside a run when the job's wall-clock budget expires."""


def _stats_view(stats: Optional[ExecutionStats]) -> dict:
    """The JSON view of one run's :class:`ExecutionStats`."""
    if stats is None:
        return {}
    view = {
        "shard_count": stats.shard_count,
        "occupied_shards": stats.occupied_shards,
        "workers": stats.workers,
        "parallel": stats.parallel,
        "field_size": stats.field_size,
        "cache_enabled": stats.cache_enabled,
        "cache_hits": stats.cache_hits,
        "cache_misses": stats.cache_misses,
        "hierarchy": stats.hierarchy,
        "kernel_fallbacks": stats.kernel_fallbacks,
        "kernel_coord_fallbacks": stats.kernel_coord_fallbacks,
        "kernel_slab_fallbacks": stats.kernel_slab_fallbacks,
        "dispatch": stats.dispatch,
        "faults": {
            "shard_retries": stats.shard_retries,
            "shards_salvaged": stats.shards_salvaged,
            "pool_restarts": stats.pool_restarts,
            "shard_timeouts": stats.shard_timeouts,
            "cache_write_failures": stats.cache_write_failures,
            "cache_degraded": stats.cache_degraded,
            "cache_evictions": stats.cache_evictions,
        },
    }
    if stats.streamed:
        view["memory"] = {
            "streamed": True,
            "stream_windows": stats.stream_windows,
            "peak_window_bytes": stats.peak_window_bytes,
            "shards_spilled": stats.shards_spilled,
            "spill_bytes": stats.spill_bytes,
            "spill_fallbacks": stats.spill_fallbacks,
        }
    if stats.hierarchy == "cells":
        view["cells_fractured"] = stats.cells_fractured
        view["instances_reused"] = stats.instances_reused
        view["instances_fallback"] = stats.instances_fallback
    if stats.dispatch == "distributed":
        view["dist"] = {
            "workers": stats.dist_workers,
            "leases_granted": stats.leases_granted,
            "leases_reclaimed": stats.leases_reclaimed,
            "worker_deaths": stats.worker_deaths,
            "heartbeats_missed": stats.heartbeats_missed,
            "speculative_wins": stats.speculative_wins,
            "speculative_losses": stats.speculative_losses,
            "duplicate_commits": stats.duplicate_commits,
            "local_fallbacks": stats.dist_local_fallbacks,
        }
    return view


class JobRunner:
    """Executes jobs against one shared cache and one artifact tree.

    Args:
        store: job store receiving progress and results.
        work_dir: artifact root; each job gets its own subdirectory.
        cache: the shared shard cache (``None`` disables caching).
    """

    def __init__(
        self,
        store: JobStore,
        work_dir: Union[str, Path],
        cache: Optional[ShardCache] = None,
    ) -> None:
        self.store = store
        self.work_dir = Path(work_dir)
        self.cache = cache

    def workload_library(self, name: str):
        """Resolve a workload name to its library (fresh per job, so
        every run sees the identical deterministic geometry)."""
        from repro.layout import generators

        workloads = dict(generators.all_workloads())
        if name not in workloads:
            raise ValueError(
                f"unknown workload {name!r}; choose from {sorted(workloads)}"
            )
        return workloads[name]

    def job_dir(self, job_id: str) -> Path:
        return self.work_dir / "jobs" / job_id

    def __call__(self, job: Job) -> None:
        """Run ``job`` to completion, honouring its spec's fault knobs.

        Cooperative cancellation (``DELETE`` on a running job) and the
        per-job wall-clock ``timeout`` are observed at shard
        boundaries via the progress callback.  A cancelled run lands
        the job in ``cancelled`` here; a timed-out run raises (never
        retried) and the queue worker records the failure; any other
        exception re-runs the job up to ``spec.retries`` extra times
        before propagating.
        """
        spec = job.spec
        while True:
            attempt = self.store.note_attempt(job.id)
            try:
                self._run_once(job)
                return
            except JobCancelled:
                self.store.to_cancelled_running(job.id)
                self.store.record_faults({"cancelled_while_running": 1})
                return
            except JobTimeoutError:
                self.store.record_faults({"job_timeouts": 1})
                raise
            except Exception:
                if attempt > spec.retries:
                    raise
                self.store.record_faults({"jobs_retried": 1})

    def _run_once(self, job: Job) -> None:
        """One attempt: run the pipeline and mark the job done.

        Exceptions propagate to :meth:`__call__` (retries) and then the
        queue worker (failure record) — this method only handles the
        success path.
        """
        spec = job.spec
        library = self.workload_library(spec.workload)
        job_dir = self.job_dir(job.id)
        job_dir.mkdir(parents=True, exist_ok=True)
        deadline = (
            time.monotonic() + spec.timeout if spec.timeout is not None else None
        )

        def check() -> None:
            if self.store.cancel_requested(job.id):
                raise JobCancelled(f"job {job.id} cancelled while running")
            if deadline is not None and time.monotonic() > deadline:
                raise JobTimeoutError(
                    f"job {job.id} exceeded its {spec.timeout:g} s budget"
                )

        def progress(done: int, total: int) -> None:
            self.store.update_progress(job.id, done, total)
            check()

        # The waiter makes retry backoffs interruptible: a cancel (via
        # the store's interrupt hook) or the job deadline cuts a pending
        # backoff sleep short, and ``check`` raises on the way out.
        waiter = BackoffWaiter(check=check, deadline=deadline)
        self.store.attach_interrupt(job.id, waiter.interrupt)
        pipeline = spec.recipe.build_pipeline(
            cache=self.cache, progress=progress, waiter=waiter
        )
        program_path = None
        if spec.recipe.machine is not None:
            program_path = job_dir / f"program.{spec.recipe.machine}.ebp"
        job_path = job_dir / "job.ebj"
        if spec.recipe.streaming:
            # Out-of-core: the pipeline spills shard results and streams
            # the .ebj itself — byte-identical to write_job of the
            # materialized run, without ever holding the shot list.
            result = pipeline.run_streaming(
                library,
                name=spec.job_name,
                program_path=program_path,
                job_path=job_path,
            )
            job_bytes = result.job_bytes
        else:
            result = pipeline.run(
                library, name=spec.job_name, program_path=program_path
            )
            job_bytes = write_job(result.job, job_path)

        summary = {
            "digest": result.job.digest(),
            "figure_count": result.fracture_report.figure_count,
            "source_polygons": result.source_polygons,
            "corrected": result.corrected,
            "job_bytes": job_bytes,
            "execution": _stats_view(result.execution),
        }
        stats = result.execution
        if stats is not None:
            self.store.record_faults(
                {
                    "shard_retries": stats.shard_retries,
                    "shards_salvaged": stats.shards_salvaged,
                    "pool_restarts": stats.pool_restarts,
                    "shard_timeouts": stats.shard_timeouts,
                    "cache_write_failures": stats.cache_write_failures,
                    "cache_evictions": stats.cache_evictions,
                    "spill_fallbacks": stats.spill_fallbacks,
                }
            )
            if stats.dispatch == "distributed":
                self.store.record_dist(
                    {
                        "distributed_jobs": 1,
                        "leases_granted": stats.leases_granted,
                        "leases_reclaimed": stats.leases_reclaimed,
                        "worker_deaths": stats.worker_deaths,
                        "heartbeats_missed": stats.heartbeats_missed,
                        "speculative_wins": stats.speculative_wins,
                        "speculative_losses": stats.speculative_losses,
                        "duplicate_commits": stats.duplicate_commits,
                        "dist_local_fallbacks": stats.dist_local_fallbacks,
                    }
                )
        program = result.machine_program
        if program is not None:
            summary["program"] = {
                "mode": program.mode,
                "digest": program.digest,
                "stream_bytes": program.stream_bytes,
                "file_bytes": program.file_bytes,
                "segment_count": program.segment_count,
                "cache_hits": program.cache_hits,
                "cache_misses": program.cache_misses,
            }
        self.store.to_done(
            job.id,
            summary,
            job_path=str(job_path),
            program_path=str(program_path) if program_path else None,
        )

"""The JSON wire schema of the prep service.

One submission payload = one workload name + the CLI's pipeline knobs
(flat, not nested — the knob names are exactly the ``repro.cli``
option names with dashes as underscores) + scheduling fields::

    {
        "workload": "fzp",
        "pec": true,
        "field_size": 15.0,
        "machine": "raster",
        "priority": 5
    }

Parsing is strict: unknown keys, wrong types and invalid values are
:class:`SchemaError`\\ s, which the HTTP layer turns into ``400``
responses with the message in the body.  Valid payloads become a
:class:`JobSpec` wrapping a :class:`~repro.core.recipe.PrepRecipe` —
the same validated value object the CLI builds its pipeline from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.recipe import PrepRecipe
from repro.service.jobs import Job


class SchemaError(ValueError):
    """A submission payload that cannot become a job (HTTP 400)."""


#: Submission keys that are scheduling/naming concerns, not pipeline
#: knobs (everything else in a payload must be a PrepRecipe field).
_SPEC_KEYS = ("workload", "priority", "name", "timeout", "retries")


@dataclass(frozen=True)
class JobSpec:
    """A validated submission: what to prepare, how, and how urgently.

    Attributes:
        workload: built-in workload name (see
            :func:`repro.layout.generators.all_workloads`).
        recipe: the full pipeline-knob set.
        priority: scheduling priority — higher runs earlier (FIFO
            within a class); default 0.
        name: job name; defaults to the workload name, matching
            ``repro.cli demo`` (artifact bytes never depend on it).
        timeout: per-job wall-clock budget in seconds; a run exceeding
            it is stopped at the next shard boundary and the job fails
            (``None`` = no limit).
        retries: whole-job re-run attempts after an unexpected failure
            (timeouts and cancellations are never retried); default 0.
    """

    workload: str
    recipe: PrepRecipe
    priority: int = 0
    name: Optional[str] = None
    timeout: Optional[float] = None
    retries: int = 0

    @property
    def job_name(self) -> str:
        return self.name or self.workload


def known_workloads() -> list:
    """The submittable workload names, sorted."""
    from repro.layout import generators

    return sorted(name for name, _ in generators.all_workloads())


def parse_job_spec(payload) -> JobSpec:
    """Validate a decoded JSON payload into a :class:`JobSpec`.

    Raises:
        SchemaError: non-object payload, missing/unknown workload,
            unknown keys, or any invalid knob value.
    """
    if not isinstance(payload, dict):
        raise SchemaError(
            f"job payload must be a JSON object, got {type(payload).__name__}"
        )
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise SchemaError("'workload' is required and must be a string")
    workloads = known_workloads()
    if workload not in workloads:
        raise SchemaError(
            f"unknown workload {workload!r}; choose from {workloads}"
        )
    priority = payload.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        raise SchemaError(f"'priority' must be an integer, got {priority!r}")
    name = payload.get("name")
    if name is not None and not isinstance(name, str):
        raise SchemaError(f"'name' must be a string, got {name!r}")
    timeout = payload.get("timeout")
    if timeout is not None:
        if isinstance(timeout, bool) or not isinstance(timeout, (int, float)):
            raise SchemaError(f"'timeout' must be a number, got {timeout!r}")
        if timeout <= 0:
            raise SchemaError(f"'timeout' must be positive, got {timeout!r}")
    retries = payload.get("retries", 0)
    if isinstance(retries, bool) or not isinstance(retries, int):
        raise SchemaError(f"'retries' must be an integer, got {retries!r}")
    if retries < 0:
        raise SchemaError(f"'retries' must be >= 0, got {retries!r}")
    knobs = {k: v for k, v in payload.items() if k not in _SPEC_KEYS}
    try:
        recipe = PrepRecipe.from_dict(knobs)
    except (ValueError, TypeError) as exc:
        raise SchemaError(str(exc)) from exc
    return JobSpec(
        workload=workload,
        recipe=recipe,
        priority=priority,
        name=name,
        timeout=timeout,
        retries=retries,
    )


def job_view(job: Job) -> dict:
    """The JSON representation served by ``GET /jobs/{id}``.

    A done job's ``result.execution`` carries the run's
    :class:`~repro.core.executor.ExecutionStats` view, including the
    fast-kernel degradation counters (``kernel_fallbacks``, split into
    ``kernel_coord_fallbacks`` / ``kernel_slab_fallbacks``) — a nonzero
    value means part of the job ran on a slower exact path even though
    the recipe asked for the fast kernel.
    """
    view = {
        "id": job.id,
        "state": job.state,
        "workload": job.spec.workload,
        "name": job.spec.job_name,
        "priority": job.spec.priority,
        "timeout": job.spec.timeout,
        "retries": job.spec.retries,
        "attempts": job.attempts,
        "cancel_requested": job.cancel_requested,
        "recipe": job.spec.recipe.to_dict(),
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "progress": {
            "shards_done": job.shards_done,
            "shards_total": job.shards_total,
        },
        "error": job.error,
        "result": job.result,
    }
    if job.state == "done":
        artifacts = {"result": f"/jobs/{job.id}/result"}
        if job.program_path is not None:
            artifacts["program"] = f"/jobs/{job.id}/result?artifact=program"
        view["artifacts"] = artifacts
    return view

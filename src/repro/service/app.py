"""The HTTP front-end of the prep service (stdlib only).

Endpoints::

    POST   /jobs                 submit a job (201 + job record)
    GET    /jobs                 list all jobs
    GET    /jobs/{id}            job state machine + progress + stats
    GET    /jobs/{id}/result     artifact bytes (?artifact=job|program)
    DELETE /jobs/{id}            cancel a job: queued → 200 (gone now),
                                 running → 202 (stops at the next shard
                                 boundary), terminal → 409
    GET    /healthz              liveness
    GET    /readyz               readiness (503 when not ready)
    GET    /stats                queue depth, pool state, cache hit rate

Built on :class:`http.server.ThreadingHTTPServer` so the service has no
dependency beyond the toolchain the pipeline already needs — a FastAPI
front could mount the same store/queue/runner objects, but must stay an
*optional* extra.  Request handlers only translate HTTP to store/queue
calls; every unexpected exception becomes a 500 response and the server
keeps serving.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Tuple, Union
from urllib.parse import parse_qs, urlsplit

from repro.core.cache import ShardCache
from repro.service import health
from repro.service.jobs import JobStore
from repro.service.queue import JobQueue
from repro.service.runner import JobRunner
from repro.service.schemas import SchemaError, job_view, parse_job_spec

_CHUNK = 64 * 1024


class PrepServer(ThreadingHTTPServer):
    """The HTTP server plus the service objects the handlers act on."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: JobStore,
        queue: JobQueue,
        runner: JobRunner,
        cache: Optional[ShardCache],
        work_dir: Union[str, Path],
    ) -> None:
        super().__init__(address, PrepRequestHandler)
        self.store = store
        self.queue = queue
        self.runner = runner
        self.cache = cache
        self.work_dir = Path(work_dir)
        self.started_at = time.time()

    def start(self) -> None:
        """Start the queue workers (the HTTP loop is the caller's:
        ``serve_forever()`` inline or on a thread)."""
        self.queue.start()

    def stop(self) -> None:
        """Drain nothing, stop everything: queue workers then sockets."""
        self.queue.shutdown(wait=True)
        self.server_close()

    def stats_snapshot(self) -> dict:
        """The ``GET /stats`` body."""
        from repro.core.executor import worker_pool_status

        cache_stats = {"enabled": self.cache is not None}
        if self.cache is not None:
            stats = self.cache.stats
            cache_stats.update(
                hits=stats.hits,
                misses=stats.misses,
                stores=stats.stores,
                hit_rate=stats.hit_rate,
                entries=self.cache.entry_count(),
            )
        return {
            "queue": {
                "depth": self.queue.depth(),
                "running": self.queue.running_count(),
                "concurrency": self.queue.concurrency,
                "workers_alive": self.queue.workers_alive(),
            },
            "pool": worker_pool_status(),
            "cache": cache_stats,
            "jobs": self.store.counts(),
            "faults": self.store.fault_totals(),
            "dist": self.store.dist_totals(),
        }


class PrepRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs+paths onto the server's store/queue/runner."""

    server: PrepServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        """Silence per-request stderr chatter (tests, CI logs)."""

    def _begin_response(self, status: int) -> None:
        """``send_response`` + bookkeeping: once any bytes of a
        response are on the wire, a late failure must close the
        connection instead of emitting a second response (which would
        corrupt HTTP/1.1 keep-alive framing for the client)."""
        self._response_begun = True
        self.send_response(status)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self._begin_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_json(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SchemaError("request body is empty; send a JSON object")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SchemaError(f"request body is not valid JSON: {exc}") from exc

    def _dispatch(self, method: str) -> None:
        split = urlsplit(self.path)
        parts = [p for p in split.path.split("/") if p]
        query = parse_qs(split.query)
        self._response_begun = False
        try:
            handled = self._route(method, parts, query)
        except SchemaError as exc:
            self._send_error_json(400, str(exc))
            return
        except BrokenPipeError:  # client went away mid-response
            self.close_connection = True
            return
        except Exception as exc:  # noqa: BLE001 - server must stay up
            if self._response_begun:
                # Headers (and possibly part of a body) are already on
                # the wire — a second response would corrupt keep-alive
                # framing, so drop the connection instead.
                self.close_connection = True
                return
            self._send_error_json(500, f"{type(exc).__name__}: {exc}")
            return
        if not handled:
            self._send_error_json(404, f"no route for {method} {split.path}")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")

    # -- routing -----------------------------------------------------------

    def _route(self, method: str, parts: list, query: dict) -> bool:
        if method == "GET" and parts == ["healthz"]:
            self._send_json(200, health.liveness(self.server))
            return True
        if method == "GET" and parts == ["readyz"]:
            ready, detail = health.readiness(self.server)
            self._send_json(200 if ready else 503, detail)
            return True
        if method == "GET" and parts == ["stats"]:
            self._send_json(200, self.server.stats_snapshot())
            return True
        if parts and parts[0] == "jobs":
            if method == "POST" and len(parts) == 1:
                return self._submit_job()
            if method == "GET" and len(parts) == 1:
                jobs = [job_view(j) for j in self.server.store.list()]
                self._send_json(200, {"jobs": jobs})
                return True
            if len(parts) >= 2:
                return self._job_routes(method, parts, query)
        return False

    def _job_routes(self, method: str, parts: list, query: dict) -> bool:
        job_id = parts[1]
        # snapshot(), not get(): handlers render the record, and a live
        # record racing a worker's to_done() could be seen half-written
        # (state "done" with result/job_path still None).
        job = self.server.store.snapshot(job_id)
        if job is None:
            self._send_error_json(404, f"no such job {job_id!r}")
            return True
        if method == "GET" and len(parts) == 2:
            self._send_json(200, job_view(job))
            return True
        if method == "GET" and len(parts) == 3 and parts[2] == "result":
            self._send_result(job, query)
            return True
        if method == "DELETE" and len(parts) == 2:
            disposition = self.server.queue.cancel(job_id)
            if disposition == "cancelled":
                self._send_json(
                    200, job_view(self.server.store.snapshot(job_id))
                )
            elif disposition == "cancelling":
                # Accepted: the runner observes the flag at the next
                # shard boundary and lands the job in ``cancelled``.
                self._send_json(
                    202, job_view(self.server.store.snapshot(job_id))
                )
            else:
                current = self.server.store.snapshot(job_id)
                state = current.state if current is not None else job.state
                self._send_error_json(
                    409,
                    f"job {job_id!r} is {state}; finished jobs "
                    "cannot be cancelled",
                )
            return True
        return False

    # -- handlers ----------------------------------------------------------

    def _submit_job(self) -> bool:
        spec = parse_job_spec(self._read_json())
        job = self.server.store.create(spec)
        self.server.queue.submit(job)
        body = json.dumps(job_view(job)).encode()
        self._begin_response(201)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.send_header("Location", f"/jobs/{job.id}")
        self.end_headers()
        self.wfile.write(body)
        return True

    def _send_result(self, job, query: dict) -> None:
        if job.state != "done":
            status = 404 if job.state in ("failed", "cancelled") else 409
            self._send_error_json(
                status,
                f"job {job.id!r} is {job.state}; results exist only for "
                "done jobs",
            )
            return
        artifact = (query.get("artifact") or ["job"])[0]
        if artifact == "job":
            path = job.job_path
        elif artifact == "program":
            path = job.program_path
            if path is None:
                self._send_error_json(
                    404,
                    f"job {job.id!r} exported no machine program "
                    "(submit with a 'machine' mode)",
                )
                return
        else:
            self._send_error_json(
                400, f"artifact must be 'job' or 'program', got {artifact!r}"
            )
            return
        path = Path(path)
        try:
            size = path.stat().st_size
        except OSError:
            self._send_error_json(
                500, f"artifact of job {job.id!r} is missing on disk"
            )
            return
        self._begin_response(200)
        self.send_header("Content-Type", "application/octet-stream")
        self.send_header("Content-Length", str(size))
        self.send_header(
            "Content-Disposition", f'attachment; filename="{path.name}"'
        )
        self.end_headers()
        with path.open("rb") as stream:
            while True:
                chunk = stream.read(_CHUNK)
                if not chunk:
                    break
                self.wfile.write(chunk)


def create_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    cache_dir: Optional[Union[str, Path]] = None,
    work_dir: Union[str, Path] = ".prep-service",
    concurrency: int = 2,
    start: bool = True,
) -> PrepServer:
    """Wire up a ready-to-serve :class:`PrepServer`.

    Args:
        host / port: bind address (``port=0`` picks a free port —
            read it back from ``server.server_address``).
        cache_dir: shared shard-cache directory (``None`` = no cache —
            every tenant then recomputes everything, so pass one in
            production; the CLI default is ``<work_dir>/shard-cache``).
        work_dir: artifact root for job results.
        concurrency: maximum jobs running at once.
        start: spawn the queue workers before returning.
    """
    store = JobStore()
    cache = ShardCache(cache_dir) if cache_dir is not None else None
    runner = JobRunner(store, work_dir=work_dir, cache=cache)
    queue = JobQueue(store, runner, concurrency=concurrency)
    server = PrepServer(
        (host, port), store, queue, runner, cache, work_dir
    )
    if start:
        server.start()
    return server

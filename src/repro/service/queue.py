"""The priority job queue: admission control for the shared pipeline.

Jobs are drained by a fixed pool of worker threads — the service's
concurrency limit.  Each worker runs one job at a time through the
runner; the heavy lifting inside a job still lands on the persistent
*process* pool of :mod:`repro.core.executor` (when the job's recipe
asks for workers), so the thread here is an orchestrator, not a
compute unit.

Ordering: highest priority first, FIFO within a priority class
(ties broken by submission sequence).  Cancellation purges the job's
heap entry eagerly and wakes every waiter, so ``wait_idle()`` and
``depth()`` agree immediately — a heap never holds entries for jobs
that will not run.

A job that raises does not take a worker thread down: the exception is
captured on the job record (``"ExcType: message"``) and the worker
moves on — one poisoned submission never makes the server unhealthy.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import CancelledError
from typing import Callable, List, Optional

from repro.service.jobs import Job, JobStore


class JobQueue:
    """Priority queue + worker threads over a :class:`JobStore`.

    Args:
        store: the job store transitions go through.
        runner: ``runner(job)`` — runs one job to completion; raising
            marks the job failed.
        concurrency: worker-thread count — the maximum number of jobs
            in the ``running`` state at once.
    """

    def __init__(
        self,
        store: JobStore,
        runner: Callable[[Job], None],
        concurrency: int = 2,
    ) -> None:
        if concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        self.store = store
        self.runner = runner
        self.concurrency = concurrency
        self._cv = threading.Condition()
        self._heap: List[tuple] = []
        self._running: set = set()
        self._stopping = False
        self._threads: List[threading.Thread] = []

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Spawn the worker threads (idempotent)."""
        with self._cv:
            if self._threads:
                return
            self._stopping = False
            self._threads = [
                threading.Thread(
                    target=self._worker,
                    name=f"prep-queue-{i}",
                    daemon=True,
                )
                for i in range(self.concurrency)
            ]
        for thread in self._threads:
            thread.start()

    def shutdown(self, wait: bool = True) -> None:
        """Stop the workers; queued jobs stay queued (and resubmittable
        by a future queue over the same store)."""
        with self._cv:
            self._stopping = True
            self._cv.notify_all()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        with self._cv:
            self._threads = []

    # -- submission / cancellation ----------------------------------------

    def submit(self, job: Job) -> None:
        """Enqueue a stored job (higher ``priority`` runs earlier)."""
        with self._cv:
            heapq.heappush(self._heap, (-job.priority, job.sequence, job.id))
            self._cv.notify()

    def cancel(self, job_id: str) -> str:
        """Try to cancel; returns the job's resulting disposition:
        ``"cancelled"`` (was queued — gone immediately),
        ``"cancelling"`` (running — the runner stops cooperatively at
        the next shard boundary), ``"finished"`` (already terminal) or
        ``"missing"``."""
        job = self.store.get(job_id)
        if job is None:
            return "missing"
        if self.store.to_cancelled(job_id):
            # Purge the heap entry and wake every waiter so
            # ``wait_idle()`` observes the emptied queue right away
            # instead of blocking until an unrelated submission.
            with self._cv:
                self._heap = [e for e in self._heap if e[2] != job_id]
                heapq.heapify(self._heap)
                self._cv.notify_all()
            return "cancelled"
        if self.store.request_running_cancel(job_id):
            return "cancelling"
        return "finished"

    # -- introspection -----------------------------------------------------

    def depth(self) -> int:
        """Jobs waiting in the queue (cancelled stragglers excluded)."""
        with self._cv:
            ids = [entry[2] for entry in self._heap]
        return sum(
            1
            for job_id in ids
            if (job := self.store.get(job_id)) is not None
            and job.state == "queued"
        )

    def running_count(self) -> int:
        with self._cv:
            return len(self._running)

    def workers_alive(self) -> int:
        return sum(1 for t in self._threads if t.is_alive())

    def wait_idle(self, timeout: Optional[float] = None) -> bool:
        """Block until nothing is queued or running (tests, drains)."""
        with self._cv:
            return self._cv.wait_for(
                lambda: not self._heap and not self._running, timeout=timeout
            )

    # -- the worker loop ---------------------------------------------------

    def _next_job(self) -> Optional[Job]:
        """Pop the best runnable job, skipping cancelled entries;
        blocks until one arrives or the queue stops.  The stop flag is
        checked *before* every pop so shutdown() never drains queued
        work — queued jobs stay queued, as its docstring promises."""
        with self._cv:
            while True:
                while self._heap and not self._stopping:
                    _, _, job_id = heapq.heappop(self._heap)
                    if self.store.to_running(job_id):
                        job = self.store.get(job_id)
                        self._running.add(job_id)
                        return job
                    # Cancelled while queued — skip, and wake any
                    # wait_idle() caller in case this emptied the heap.
                    self._cv.notify_all()
                if self._stopping:
                    return None
                self._cv.wait()

    def _worker(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                return
            try:
                self.runner(job)
            except (Exception, CancelledError) as exc:
                # noqa: BLE001 — captured on the job.  CancelledError
                # is listed explicitly: on supported Pythons it derives
                # from BaseException, and a cancellation leaking out of
                # the engine must fail the one job, not kill the worker
                # thread (which would silently shrink concurrency and
                # flip /readyz to 503 forever).
                self.store.to_failed(job.id, f"{type(exc).__name__}: {exc}")
            finally:
                with self._cv:
                    self._running.discard(job.id)
                    self._cv.notify_all()

"""The job store: every submission's state machine, thread-safe.

A job moves ``queued → running → done | failed``; a queued job can be
``cancelled`` immediately, and a running job can request cooperative
cancellation (the runner observes the flag at the next shard boundary
and lands the job in ``cancelled``).  All transitions go through the
store
under one lock, so the HTTP threads, the queue workers and the
progress callbacks from the execution engine can never observe a torn
job record.  Terminal states are final: a finished job's record (and
its artifacts on disk) stay addressable until the server goes away.
"""

from __future__ import annotations

import copy
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.schemas import JobSpec

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submission's full record.

    Attributes:
        id: opaque job handle (URL-safe hex).
        spec: the parsed submission (workload + recipe + priority).
        state: one of :data:`JOB_STATES`.
        sequence: submission order — the FIFO tie-break within a
            priority class.
        submitted_at / started_at / finished_at: wall-clock timestamps
            (unix seconds; ``None`` until reached).
        shards_done / shards_total: per-shard completion progress,
            reported live by the execution engine while running.
        error: ``"ExcType: message"`` for failed jobs.
        result: summary mapping of a done job (digest, figure count,
            cache hits/misses, stream stats).
        job_path / program_path: on-disk artifacts of a done job.
        cancel_requested: a ``DELETE`` arrived while the job was
            running; the runner's progress callback observes the flag
            and stops cooperatively at the next shard boundary.
        attempts: how many times the runner has started this job
            (> 1 after per-job retries).
        interrupt: runner-registered callable that wakes the run's
            pending backoff waits immediately (see
            :class:`~repro.core.executor.BackoffWaiter`) — invoked by
            :meth:`JobStore.request_running_cancel` so a cancel never
            waits out a sleeping retry backoff.
    """

    id: str
    spec: "JobSpec"
    state: str = "queued"
    sequence: int = 0
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    shards_done: int = 0
    shards_total: int = 0
    error: Optional[str] = None
    result: Optional[dict] = None
    job_path: Optional[str] = None
    program_path: Optional[str] = None
    cancel_requested: bool = False
    attempts: int = 0
    interrupt: Optional[Callable[[], None]] = None

    @property
    def priority(self) -> int:
        return self.spec.priority


class JobStore:
    """Thread-safe in-memory registry of every job the server has seen."""

    #: Every fault counter the store aggregates across jobs — the
    #: ``faults`` section of ``GET /stats`` always carries all keys.
    FAULT_KEYS = (
        "shard_retries",
        "shards_salvaged",
        "pool_restarts",
        "shard_timeouts",
        "cache_write_failures",
        "cache_evictions",
        "spill_fallbacks",
        "jobs_retried",
        "job_timeouts",
        "cancelled_while_running",
    )

    #: Distributed-scheduling counters aggregated across jobs — the
    #: ``dist`` section of ``GET /stats`` always carries all keys.
    DIST_KEYS = (
        "leases_granted",
        "leases_reclaimed",
        "worker_deaths",
        "heartbeats_missed",
        "speculative_wins",
        "speculative_losses",
        "duplicate_commits",
        "dist_local_fallbacks",
        "distributed_jobs",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._sequence = 0
        self._fault_totals: Dict[str, int] = {k: 0 for k in self.FAULT_KEYS}
        self._dist_totals: Dict[str, int] = {k: 0 for k in self.DIST_KEYS}

    # -- creation / lookup -------------------------------------------------

    def create(self, spec: "JobSpec") -> Job:
        """Register a new queued job and return its record."""
        with self._lock:
            self._sequence += 1
            job = Job(
                id=uuid.uuid4().hex[:12],
                spec=spec,
                sequence=self._sequence,
            )
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Optional[Job]:
        """The *live* record — for code that will transition it next.

        Readers that only render a job (HTTP views) must use
        :meth:`snapshot` instead: a live record can be mutated by a
        worker mid-read, e.g. ``state == "done"`` observed before
        ``result``/``job_path`` are assigned.
        """
        with self._lock:
            return self._jobs.get(job_id)

    def snapshot(self, job_id: str) -> Optional[Job]:
        """A consistent point-in-time copy of one job, made under the
        store lock — never a torn record.  Field values are shared with
        the live record but every terminal field (``result``,
        ``job_path``, …) is assigned together with ``state`` under the
        same lock, so the copy is internally coherent."""
        with self._lock:
            job = self._jobs.get(job_id)
            return copy.copy(job) if job is not None else None

    def list(self) -> List[Job]:
        """Consistent copies of all jobs, in submission order."""
        with self._lock:
            live = sorted(self._jobs.values(), key=lambda j: j.sequence)
            return [copy.copy(job) for job in live]

    def counts(self) -> Dict[str, int]:
        """How many jobs are in each state (every state always keyed)."""
        counts = {state: 0 for state in JOB_STATES}
        with self._lock:
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    # -- state machine -----------------------------------------------------

    def to_running(self, job_id: str) -> bool:
        """``queued → running``; False if the job left the queue first
        (cancelled between scheduling and pickup)."""
        with self._lock:
            job = self._jobs[job_id]
            if job.state != "queued":
                return False
            job.state = "running"
            job.started_at = time.time()
            return True

    def to_cancelled(self, job_id: str) -> bool:
        """``queued → cancelled``; False from any other state — a
        running job needs :meth:`request_running_cancel` instead (its
        shards are already on the pool) and terminal states are final."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "queued":
                return False
            job.state = "cancelled"
            job.finished_at = time.time()
            return True

    def request_running_cancel(self, job_id: str) -> bool:
        """Flag a *running* job for cooperative cancellation; False
        from any other state.  The runner's progress callback polls
        the flag and lands the job in ``cancelled`` at the next shard
        boundary (idempotent: re-requesting stays True).  A registered
        backoff interrupt fires too, so a run sleeping in a retry
        backoff aborts immediately instead of waiting the delay out."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "running":
                return False
            job.cancel_requested = True
            interrupt = job.interrupt
        if interrupt is not None:
            interrupt()
        return True

    def attach_interrupt(
        self, job_id: str, interrupt: Callable[[], None]
    ) -> None:
        """Register the run's backoff-wakeup hook (runner, at start)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                job.interrupt = interrupt

    def cancel_requested(self, job_id: str) -> bool:
        """Whether a cooperative cancel is pending on this job."""
        with self._lock:
            job = self._jobs.get(job_id)
            return job is not None and job.cancel_requested

    def to_cancelled_running(self, job_id: str) -> bool:
        """``running → cancelled`` — the runner honoured a cooperative
        cancel request; False from any other state."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state != "running":
                return False
            job.state = "cancelled"
            job.finished_at = time.time()
            return True

    def note_attempt(self, job_id: str) -> int:
        """Count one runner attempt on the job; returns the new total."""
        with self._lock:
            job = self._jobs[job_id]
            job.attempts += 1
            return job.attempts

    def to_done(
        self,
        job_id: str,
        result: dict,
        job_path: Optional[str] = None,
        program_path: Optional[str] = None,
    ) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "done"
            job.result = result
            job.job_path = job_path
            job.program_path = program_path
            job.finished_at = time.time()

    def to_failed(self, job_id: str, error: str) -> None:
        with self._lock:
            job = self._jobs[job_id]
            job.state = "failed"
            job.error = error
            job.finished_at = time.time()

    # -- fault accounting --------------------------------------------------

    def record_faults(self, counters: Dict[str, int]) -> None:
        """Fold one run's recovery counters into the server-wide
        totals (unknown keys and zero values are ignored)."""
        with self._lock:
            for key, value in counters.items():
                if key in self._fault_totals and isinstance(value, int):
                    self._fault_totals[key] += value

    def fault_totals(self) -> Dict[str, int]:
        """A copy of the server-wide fault counters (all keys present)."""
        with self._lock:
            return dict(self._fault_totals)

    def record_dist(self, counters: Dict[str, int]) -> None:
        """Fold one distributed run's scheduling counters into the
        server-wide totals (unknown keys and non-ints are ignored)."""
        with self._lock:
            for key, value in counters.items():
                if key in self._dist_totals and isinstance(value, int):
                    self._dist_totals[key] += value

    def dist_totals(self) -> Dict[str, int]:
        """A copy of the server-wide distributed counters."""
        with self._lock:
            return dict(self._dist_totals)

    def update_progress(self, job_id: str, done: int, total: int) -> None:
        """Per-shard progress from the execution engine (monotonic;
        late out-of-order callbacks never move the counter backwards)."""
        with self._lock:
            job = self._jobs[job_id]
            job.shards_total = max(job.shards_total, total)
            job.shards_done = max(job.shards_done, done)

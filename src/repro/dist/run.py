"""Drive one batch of shards through the lease coordinator.

:func:`map_shards_distributed` is the distributed counterpart of
:func:`repro.core.executor._map_shards` — same inputs, same
``(results, pooled, recovery)`` contract plus the batch's
:class:`~repro.dist.coordinator.DistRunStats`.  It publishes the batch
on the endpoint's coordinator, folds committed results in as workers
deliver them, and finishes whatever the fleet could not (exhausted
attempt budgets, no live workers) on the local pool → serial ladder —
the top rung of the recovery ladder, so a distributed run never fails
for scheduling reasons the single-host engine would have survived.
"""

from __future__ import annotations

import pickle
import time
from typing import Callable, List, Optional, Tuple

from repro.core.executor import (
    RetryPolicy,
    Shard,
    ShardRecovery,
    ShardResult,
    _map_shards,
)
from repro.core.faults import FaultPlan
from repro.core.jobfile import loads_shard_result
from repro.dist.coordinator import (
    DistPolicy,
    DistRunStats,
    coordinator_for,
)


def map_shards_distributed(
    shards: List[Shard],
    config: tuple,
    workers: int,
    endpoint: str,
    tick: Optional[Callable[[], None]] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    policy: Optional[DistPolicy] = None,
    cache_keys: Optional[List[str]] = None,
    waiter=None,
) -> Tuple[List[ShardResult], bool, ShardRecovery, DistRunStats]:
    """Run ``shards`` across the worker fleet on ``endpoint``.

    Results come back in shard order and are byte-identical to a serial
    run: workers execute the exact per-shard entry point, commits are
    idempotent, and the merge ignores arrival order.  ``cache_keys``
    (parallel to ``shards``) ride the leases so workers with a shared
    cache can store results at the source.
    """
    if retry is None:
        retry = RetryPolicy()
    if policy is None:
        # REPRO_DIST overrides scheduling knobs the same way
        # REPRO_FAULTS injects faults; an explicit policy wins.
        policy = DistPolicy.from_env() or DistPolicy()
    n = len(shards)
    results: List[Optional[ShardResult]] = [None] * n
    recovery = ShardRecovery()
    stats = DistRunStats()
    if n == 0:
        return [], False, recovery, stats

    server = coordinator_for(endpoint)
    batch = server.submit_batch(
        [pickle.dumps(shard) for shard in shards],
        pickle.dumps((config, faults)),
        retry=retry,
        policy=policy,
        cache_keys=cache_keys,
    )
    queue = batch.queue
    try:
        grace_deadline: Optional[float] = None
        while True:
            now = time.monotonic()
            queue.scan(now)
            for position, payload in queue.take_new_commits():
                results[position] = loads_shard_result(payload)
                if tick is not None:
                    tick()
            state = queue.state(now)
            if state.error is not None:
                raise ValueError(state.error)
            if state.finished:
                break
            if state.live_workers == 0:
                if grace_deadline is None:
                    grace_deadline = now + policy.worker_grace
                elif now > grace_deadline:
                    queue.abandon_remaining()
            else:
                grace_deadline = None
            batch.progress.wait(policy.poll_interval)
            batch.progress.clear()
        # Late commits that raced the loop's last pass.
        for position, payload in queue.take_new_commits():
            results[position] = loads_shard_result(payload)
            if tick is not None:
                tick()
        stats = queue.stats.copy()
    finally:
        server.finish_batch(batch.id)

    leftover = [
        position for position in range(n) if results[position] is None
    ]
    pooled = False
    if leftover:
        stats.local_fallbacks = len(leftover)
        local_results, pooled, local_recovery = _map_shards(
            [shards[position] for position in leftover],
            config,
            workers,
            tick=tick,
            retry=retry,
            faults=faults,
            waiter=waiter,
        )
        for position, result in zip(leftover, local_results):
            results[position] = result
        # Re-key the local recovery log from sub-list to batch positions.
        for local, count in local_recovery.retries.items():
            recovery.retries[leftover[local]] = count
        for local, count in local_recovery.timeouts.items():
            recovery.timeouts[leftover[local]] = count
        recovery.salvaged.update(
            leftover[local] for local in local_recovery.salvaged
        )
        recovery.pool_restarts += local_recovery.pool_restarts
    return results, pooled or stats.remote_commits > 0, recovery, stats

"""The worker daemon: pulls leases, executes shards, commits results.

``python -m repro.cli work --connect host:port`` runs one of these per
process; tests run them as in-process threads.  The execution path is
*exactly* the single-host one — the daemon calls
:func:`repro.core.executor._process_shard_task` with the pickled
``(config, faults)`` it fetched once per batch, so every injected shard
fault (kill, hang, transient, permanent) fires with identical
``(position, attempt)`` semantics whether the shard runs on the local
pool or across the network.

Network fault kinds from the same :class:`~repro.core.faults.FaultPlan`
are consulted *here*, corrupting the scheduling conversation instead of
the computation:

* ``dead_worker`` — a daemon in its own process ``os._exit``\\ s while
  holding the lease; an in-process (same pid as the coordinator) daemon
  simulates death by silencing its heartbeats and abandoning the lease
  uncommitted, which is indistinguishable on the wire.
* ``drop_conn`` — the commit connection is cut mid-frame; the result
  never lands and the lease expires into a reclaim.
* ``late_heartbeat`` — no heartbeats are sent for this shard, so the
  coordinator presumes the worker dead and reclaims the lease; the
  (late) commit is then accepted idempotently or discarded.
* ``duplicate_commit`` — the commit frame is sent twice; the second is
  counted and discarded.

All of these end in a byte-identical run: results are deterministic and
commits are idempotent, so the faults only change *who* computes a
shard and *how often* — never what the batch merges.
"""

from __future__ import annotations

import os
import pickle
import socket
import threading
import time
from typing import Callable, Optional, Tuple

from repro.core.cache import ShardCache
from repro.core.executor import RetryPolicy, _process_shard_task
from repro.core.jobfile import dumps_shard_result
from repro.dist.protocol import parse_endpoint, request


class WorkerDaemon:
    """One lease-pulling shard worker.

    Args:
        endpoint: coordinator ``host:port``.
        cache: optional shared :class:`~repro.core.cache.ShardCache`;
            when the lease carries the shard's cache key the result is
            also stored here, so later runs hit without recomputing
            (idempotent: same key → same bytes).
        idle_exit: exit after this many seconds without being granted a
            lease (``None`` = run until stopped) — lets smoke scripts
            start workers before the coordinator exists and have them
            drain away afterwards.
        reconnect_delay: sleep between connection attempts while the
            coordinator is unreachable.
        stop_event: external stop switch (in-process workers).
        throttle: optional ``throttle(position, attempt)`` hook invoked
            before executing a shard — how straggler tests and
            benchmarks make one worker slow without touching results.
    """

    def __init__(
        self,
        endpoint: str,
        cache: Optional[ShardCache] = None,
        idle_exit: Optional[float] = None,
        reconnect_delay: float = 0.2,
        stop_event: Optional[threading.Event] = None,
        throttle: Optional[Callable[[int, int], None]] = None,
        worker_id: Optional[str] = None,
    ) -> None:
        self.address = parse_endpoint(endpoint)
        self.cache = cache
        self.idle_exit = idle_exit
        self.reconnect_delay = reconnect_delay
        self.stop_event = stop_event if stop_event is not None else threading.Event()
        self.throttle = throttle
        self.worker_id = (
            worker_id
            if worker_id is not None
            else f"{socket.gethostname()}-{os.getpid()}-{id(self):x}"
        )
        self.leases_executed = 0
        self.commits_sent = 0
        self._configs: dict = {}
        self._simulated_dead = False

    # -- plumbing ----------------------------------------------------------

    def _request(self, header: dict, payload: bytes = b"") -> Tuple[dict, bytes]:
        header = dict(header)
        header["worker"] = self.worker_id
        return request(self.address, header, payload)

    def _config_for(self, batch: str) -> Optional[tuple]:
        """The batch's ``(config, faults)``, fetched once and cached.

        Batch ids are namespaced by a per-coordinator nonce, so a
        daemon that outlives a coordinator never replays a dead
        server's config against its successor's batches.
        """
        if batch not in self._configs:
            reply, payload = self._request({"type": "config", "batch": batch})
            if reply.get("type") != "config":
                return None
            while len(self._configs) >= 32:
                self._configs.pop(next(iter(self._configs)))
            self._configs[batch] = pickle.loads(payload)
        return self._configs[batch]

    def _heartbeat_loop(
        self, batch: int, lease: int, interval: float, done: threading.Event
    ) -> None:
        while not done.wait(interval):
            if self._simulated_dead:
                return
            try:
                reply, _ = self._request(
                    {"type": "heartbeat", "batch": batch, "lease": lease}
                )
            except OSError:
                continue
            if not reply.get("live", True):
                # The lease was reclaimed — stop advertising it.
                return

    # -- fault-injection helpers ------------------------------------------

    def _die(self, faults) -> None:
        """Abrupt worker death: real for a standalone process, simulated
        (silence + abandonment) for an in-process thread worker."""
        if (
            faults is not None
            and faults.coordinator_pid is not None
            and os.getpid() != faults.coordinator_pid
        ):
            os._exit(1)
        self._simulated_dead = True
        self.stop_event.set()

    def _drop_conn_commit(self, header: dict, payload: bytes) -> None:
        """Start a commit frame, then cut the connection mid-payload."""
        import json

        from repro.dist.protocol import _FRAME

        header = dict(header)
        header["worker"] = self.worker_id
        encoded = json.dumps(header).encode("utf-8")
        # Declare the full payload length but stop one byte short, then
        # close: the coordinator's recv_exact comes up empty-handed and
        # the half-frame is discarded without advancing the queue.
        frame = (
            _FRAME.pack(len(encoded), len(payload))
            + encoded
            + payload[: max(0, len(payload) - 1)]
        )
        try:
            with socket.create_connection(self.address, timeout=10.0) as sock:
                sock.sendall(frame)
        except OSError:
            pass

    # -- the loop ----------------------------------------------------------

    def run(self) -> int:
        """Pull and execute leases until stopped; returns leases executed."""
        last_work = time.monotonic()
        while not self.stop_event.is_set():
            try:
                reply, payload = self._request({"type": "lease"})
            except OSError:
                if self._idle_expired(last_work):
                    break
                if self.stop_event.wait(self.reconnect_delay):
                    break
                continue
            kind = reply.get("type")
            if kind == "task":
                self._execute(reply, payload)
                last_work = time.monotonic()
            else:
                if self._idle_expired(last_work):
                    break
                hint = reply.get("hint", 0.05)
                if self.stop_event.wait(max(0.01, float(hint))):
                    break
        return self.leases_executed

    def _idle_expired(self, last_work: float) -> bool:
        return (
            self.idle_exit is not None
            and time.monotonic() - last_work > self.idle_exit
        )

    def _execute(self, lease: dict, shard_blob: bytes) -> None:
        batch = lease["batch"]
        lease_id = lease["lease"]
        position = lease["position"]
        attempt = lease["attempt"]
        bundle = self._config_for(batch)
        if bundle is None:
            return
        config, faults = bundle
        key = (position, attempt)
        heartbeats_on = not (
            faults is not None and key in faults.late_heartbeat
        )
        done = threading.Event()
        beat: Optional[threading.Thread] = None
        if heartbeats_on:
            beat = threading.Thread(
                target=self._heartbeat_loop,
                args=(
                    batch,
                    lease_id,
                    max(0.05, float(lease.get("heartbeat", 0.5))),
                    done,
                ),
                daemon=True,
            )
            beat.start()
        try:
            shard = pickle.loads(shard_blob)
            if self.throttle is not None:
                self.throttle(position, attempt)
            try:
                result = _process_shard_task(
                    config, faults, (position, attempt, shard)
                )
            except Exception as exc:
                retry = RetryPolicy()
                try:
                    self._request(
                        {
                            "type": "fail",
                            "batch": batch,
                            "lease": lease_id,
                            "position": position,
                            "transient": retry.is_transient(exc),
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                    )
                except OSError:
                    pass
                return
            self.leases_executed += 1
            if faults is not None and key in faults.dead_worker:
                self._die(faults)
                return
            payload = dumps_shard_result(result)
            cache_key = lease.get("cache_key")
            if self.cache is not None and cache_key:
                try:
                    self.cache.put(cache_key, result)
                except OSError:
                    pass
            header = {
                "type": "commit",
                "batch": batch,
                "lease": lease_id,
                "position": position,
                "attempt": attempt,
            }
            if faults is not None and key in faults.drop_conn:
                self._drop_conn_commit(header, payload)
                return
            sends = (
                2
                if faults is not None and key in faults.duplicate_commit
                else 1
            )
            for _ in range(sends):
                try:
                    self._request(header, payload)
                    self.commits_sent += 1
                except OSError:
                    # The coordinator will reclaim the lease; another
                    # attempt (or the local ladder) recomputes the same
                    # bytes.
                    return
        finally:
            done.set()
            if beat is not None:
                beat.join(timeout=2.0)

    def stop(self) -> None:
        self.stop_event.set()


def run_worker(
    endpoint: str,
    cache_dir: Optional[str] = None,
    idle_exit: Optional[float] = None,
) -> int:
    """CLI entry: run one worker daemon until stopped/idle-expired."""
    cache = ShardCache(cache_dir) if cache_dir else None
    daemon = WorkerDaemon(endpoint, cache=cache, idle_exit=idle_exit)
    try:
        executed = daemon.run()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        executed = daemon.leases_executed
    print(
        f"worker {daemon.worker_id}: {executed} lease(s) executed, "
        f"{daemon.commits_sent} commit(s)"
    )
    return 0

"""Distributed shard execution: lease queue, worker daemons, protocol.

The single-host execution engine (:mod:`repro.core.executor`) already
made shard work units content-addressed, picklable and
byte-deterministic; this package adds the scheduling layer that lets
*other processes and hosts* compute them.  A coordinator
(:mod:`repro.dist.coordinator`) hands out leases over a tiny
length-prefixed TCP protocol (:mod:`repro.dist.protocol`); worker
daemons (:mod:`repro.dist.worker`) pull leases, execute shards through
the exact per-shard entry point the local pool uses, and commit the
serialized results back.  Because a shard's bytes depend only on its
inputs, at-least-once delivery is safe by construction: duplicate
commits carry identical bytes and are discarded, so leases can be
reclaimed, re-granted and speculatively re-executed without ever
changing the output — the distributed run stays byte-identical to a
serial one.
"""

from repro.dist.coordinator import (
    DIST_ENV_VAR,
    CoordinatorServer,
    DistPolicy,
    DistRunStats,
    LeaseQueue,
    coordinator_for,
    shutdown_coordinators,
)
from repro.dist.protocol import ProtocolError, parse_endpoint
from repro.dist.worker import WorkerDaemon

__all__ = [
    "DIST_ENV_VAR",
    "CoordinatorServer",
    "DistPolicy",
    "DistRunStats",
    "LeaseQueue",
    "ProtocolError",
    "WorkerDaemon",
    "coordinator_for",
    "parse_endpoint",
    "shutdown_coordinators",
]

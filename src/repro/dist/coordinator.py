"""The lease coordinator: a shard work queue remote workers pull from.

One :class:`CoordinatorServer` listens on a TCP endpoint and schedules
*batches* of shards (one batch per ``execute_many`` call).  Workers pull
**leases** — ``(position, attempt, lease_id, deadline)`` — execute the
shard, and commit the serialized result back.  The scheduling rules are
the network mirror of the single-host recovery ladder in
:mod:`repro.core.executor`:

* a worker that stops contacting the coordinator (death, partition) has
  its leases **reclaimed** and re-queued under the batch's
  :class:`~repro.core.executor.RetryPolicy` attempt budget;
* a lease that outlives its deadline (hung shard) is reclaimed the same
  way — the remote analogue of the hung-worker watchdog;
* when the queue runs dry but leases are still in flight, the
  coordinator grants **speculative** duplicate leases for the oldest
  stragglers; the first committed result wins and the loser's commit is
  discarded (results are byte-deterministic, so both carry identical
  bytes — the race has no observable outcome besides wall-clock);
* a position whose remote attempt budget is exhausted is marked
  *spent* and handed back to the caller, whose local pool → serial
  ladder finishes it — a run never fails because every worker died.

Commits are accepted **idempotently**: a commit for an uncommitted
position is taken even if its lease was already reclaimed (the bytes
are correct regardless of who computed them), an identical duplicate is
counted and discarded, and a commit whose bytes differ from the
already-committed ones poisons the batch — that can only mean the
determinism contract itself is broken, which must never be papered
over.

:class:`LeaseQueue` is the pure scheduling state machine (every method
takes ``now`` explicitly, so property tests drive it with simulated
time); :class:`CoordinatorServer` wraps it in a threaded TCP server
speaking :mod:`repro.dist.protocol`.
"""

from __future__ import annotations

import json
import os
import socketserver
import threading
import time
import uuid
from collections import deque
from dataclasses import dataclass, field, fields
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.core.executor import RetryPolicy
from repro.dist.protocol import ProtocolError, recv_frame, send_frame

#: Environment variable carrying scheduling-policy overrides as JSON —
#: the :class:`DistPolicy` counterpart of ``REPRO_FAULTS``, so smoke
#: scripts and CI tune heartbeat/speculation timings without new CLI
#: flags: ``REPRO_DIST='{"speculate": false, "heartbeat_timeout": 1.0}'``.
DIST_ENV_VAR = "REPRO_DIST"


@dataclass(frozen=True)
class DistPolicy:
    """Scheduling knobs of the distributed layer.

    Attributes:
        lease_deadline: per-attempt wall-clock budget [s] for a leased
            shard when the batch's ``RetryPolicy`` has no
            ``shard_timeout``; past it the lease is reclaimed.
        heartbeat_interval: how often workers heartbeat while executing
            a lease [s].
        heartbeat_timeout: a lease-holding worker silent this long [s]
            counts as dead and its leases are reclaimed.
        worker_grace: how long the coordinator waits with work pending
            but no live workers [s] before handing the remainder to the
            local execution ladder.
        speculate: grant end-of-queue duplicate leases for stragglers.
        speculate_after: minimum lease age [s] before it is eligible
            for speculative duplication.
        poll_interval: the run loop's wait granularity [s].
        wait_hint: how long an idle worker is told to sleep before
            polling again [s].
    """

    lease_deadline: float = 30.0
    heartbeat_interval: float = 0.5
    heartbeat_timeout: float = 2.5
    worker_grace: float = 5.0
    speculate: bool = True
    speculate_after: float = 1.0
    poll_interval: float = 0.05
    wait_hint: float = 0.05

    def __post_init__(self) -> None:
        for name in (
            "lease_deadline",
            "heartbeat_interval",
            "heartbeat_timeout",
            "worker_grace",
            "speculate_after",
            "poll_interval",
            "wait_hint",
        ):
            value = getattr(self, name)
            if (
                isinstance(value, bool)
                or not isinstance(value, (int, float))
                or value < 0
            ):
                raise ValueError(f"{name} must be >= 0, got {value!r}")

    @classmethod
    def from_json(cls, text: str) -> "DistPolicy":
        """Build a policy from a JSON object of knob overrides."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"dist policy is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ValueError(
                "dist policy must be a JSON object of knob overrides, "
                f"got {type(payload).__name__}"
            )
        known = [f.name for f in fields(cls)]
        unknown = sorted(set(payload) - set(known))
        if unknown:
            raise ValueError(
                f"unknown dist policy key(s): {', '.join(unknown)}; "
                f"valid keys are {', '.join(known)}"
            )
        if "speculate" in payload and not isinstance(payload["speculate"], bool):
            raise ValueError(
                f"speculate must be a boolean, got {payload['speculate']!r}"
            )
        return cls(**payload)

    @classmethod
    def from_env(
        cls, environ: Optional[Dict[str, str]] = None
    ) -> Optional["DistPolicy"]:
        """Read overrides from ``REPRO_DIST``; None when unset/empty."""
        source = os.environ if environ is None else environ
        text = source.get(DIST_ENV_VAR, "").strip()
        if not text:
            return None
        return cls.from_json(text)


@dataclass
class DistRunStats:
    """One batch's distributed-scheduling counters.

    All-zero except ``workers`` / ``leases_granted`` /
    ``remote_commits`` on a clean run — reclaims, deaths, missed
    heartbeats and duplicates are the network layer's "a degraded run
    can never look like a clean one" witnesses.
    """

    workers: int = 0
    leases_granted: int = 0
    leases_reclaimed: int = 0
    worker_deaths: int = 0
    heartbeats_missed: int = 0
    speculative_leases: int = 0
    speculative_wins: int = 0
    speculative_losses: int = 0
    duplicate_commits: int = 0
    remote_commits: int = 0
    local_fallbacks: int = 0

    def copy(self) -> "DistRunStats":
        return DistRunStats(
            **{f.name: getattr(self, f.name) for f in fields(self)}
        )


@dataclass
class _Lease:
    lease_id: int
    position: int
    attempt: int
    worker: str
    granted_at: float
    deadline: float
    speculative: bool = False


@dataclass
class _Worker:
    last_contact: float
    silent_flagged: bool = False


@dataclass(frozen=True)
class _QueueState:
    """What the run loop needs to decide its next step."""

    finished: bool
    error: Optional[str]
    live_workers: int
    outstanding: int
    pending: int


class LeaseQueue:
    """The scheduling state machine for one batch of ``n`` shards.

    Thread-safe; every public method takes the current monotonic time
    explicitly so tests replay schedules deterministically.  Positions
    end up either *committed* (result bytes held) or *spent* (remote
    attempt budget exhausted or the batch abandoned) — the caller
    finishes spent positions on the local ladder.
    """

    def __init__(
        self,
        n: int,
        retry: Optional[RetryPolicy] = None,
        policy: Optional[DistPolicy] = None,
    ) -> None:
        if n < 0:
            raise ValueError(f"shard count must be >= 0, got {n}")
        self.n = n
        self.retry = retry if retry is not None else RetryPolicy()
        self.policy = policy if policy is not None else DistPolicy()
        self.stats = DistRunStats()
        self._lock = threading.Lock()
        self._pending: Deque[Tuple[int, int]] = deque(
            (position, 0) for position in range(n)
        )
        self._leases: Dict[int, _Lease] = {}
        self._committed: Dict[int, bytes] = {}
        self._delivered: Set[int] = set()
        self._attempts_used: List[int] = [0] * n
        self._spent: Set[int] = set()
        self._workers: Dict[str, _Worker] = {}
        self._workers_seen: Set[str] = set()
        self._error: Optional[str] = None
        self._closed = False
        self._lease_seq = 0

    # -- scheduling --------------------------------------------------------

    def _lease_budget(self) -> float:
        if self.retry.shard_timeout is not None:
            return self.retry.shard_timeout
        return self.policy.lease_deadline

    def _touch_locked(self, worker: str, now: float) -> None:
        state = self._workers.get(worker)
        if state is None:
            self._workers[worker] = _Worker(last_contact=now)
            if worker not in self._workers_seen:
                self._workers_seen.add(worker)
                self.stats.workers = len(self._workers_seen)
        else:
            state.last_contact = now
            state.silent_flagged = False

    def touch_worker(self, worker: str, now: float) -> None:
        """Record any contact from ``worker`` (poll, heartbeat, commit)."""
        with self._lock:
            self._touch_locked(worker, now)

    def grant(self, worker: str, now: float) -> Optional[_Lease]:
        """Hand ``worker`` a lease, or ``None`` when nothing is grantable.

        Pending work is granted first; with the queue dry and
        speculation on, the oldest sufficiently-aged in-flight position
        without a duplicate (and with attempt budget left) is granted a
        speculative second lease.
        """
        with self._lock:
            self._touch_locked(worker, now)
            if self._error is not None or self._closed:
                return None
            if self._pending:
                position, attempt = self._pending.popleft()
                return self._grant_locked(
                    worker, position, attempt, now, speculative=False
                )
            if not self.policy.speculate:
                return None
            duplicated = {
                lease.position
                for lease in self._leases.values()
                if lease.speculative
            }
            candidates = [
                lease
                for lease in self._leases.values()
                if not lease.speculative
                and lease.position not in duplicated
                and lease.position not in self._committed
                and now - lease.granted_at >= self.policy.speculate_after
                and self._attempts_used[lease.position]
                < self.retry.max_attempts
            ]
            if not candidates:
                return None
            straggler = min(candidates, key=lambda lease: lease.granted_at)
            position = straggler.position
            attempt = self._attempts_used[position]
            self.stats.speculative_leases += 1
            return self._grant_locked(
                worker, position, attempt, now, speculative=True
            )

    def _grant_locked(
        self,
        worker: str,
        position: int,
        attempt: int,
        now: float,
        speculative: bool,
    ) -> _Lease:
        self._lease_seq += 1
        lease = _Lease(
            lease_id=self._lease_seq,
            position=position,
            attempt=attempt,
            worker=worker,
            granted_at=now,
            deadline=now + self._lease_budget(),
            speculative=speculative,
        )
        self._leases[lease.lease_id] = lease
        self._attempts_used[position] = max(
            self._attempts_used[position], attempt + 1
        )
        self.stats.leases_granted += 1
        return lease

    def heartbeat(self, worker: str, lease_id: int, now: float) -> bool:
        """A worker's I-am-alive while executing ``lease_id``; returns
        whether the lease is still considered live (a reclaimed lease's
        worker may as well stop — its commit would be redundant)."""
        with self._lock:
            self._touch_locked(worker, now)
            return lease_id in self._leases

    def _requeue_locked(self, position: int) -> None:
        """Put ``position`` back in line exactly once, or mark it spent.

        Guarded so a position can never be queued twice: nothing to do
        if it is committed, already pending, already spent, or still
        covered by another outstanding lease (the speculative sibling
        *is* the retry in flight).
        """
        if position in self._committed or position in self._spent:
            return
        if any(entry[0] == position for entry in self._pending):
            return
        if any(
            lease.position == position for lease in self._leases.values()
        ):
            return
        next_attempt = self._attempts_used[position]
        if next_attempt >= self.retry.max_attempts:
            self._spent.add(position)
        else:
            self._pending.append((position, next_attempt))

    def commit(
        self,
        lease_id: int,
        worker: str,
        position: int,
        payload: bytes,
        now: float,
    ) -> str:
        """Accept a result; returns ``"accepted"``, ``"duplicate"`` or
        ``"conflict"``.

        Accepted even when the lease was already reclaimed — the bytes
        of a deterministic shard are correct no matter which attempt
        produced them (at-least-once delivery).  Identical re-commits
        are discarded; differing bytes poison the batch.
        """
        with self._lock:
            self._touch_locked(worker, now)
            lease = self._leases.pop(lease_id, None)
            if not 0 <= position < self.n:
                self._poison_locked(
                    f"commit for position {position} outside batch of "
                    f"{self.n} shards"
                )
                return "conflict"
            previous = self._committed.get(position)
            if previous is not None:
                if previous == payload:
                    self.stats.duplicate_commits += 1
                    return "duplicate"
                self._poison_locked(
                    f"conflicting commit for shard {position}: two "
                    "attempts produced different bytes — the determinism "
                    "contract is broken"
                )
                return "conflict"
            self._committed[position] = payload
            self._spent.discard(position)
            self._pending = deque(
                entry for entry in self._pending if entry[0] != position
            )
            self.stats.remote_commits += 1
            if lease is not None and lease.speculative:
                self.stats.speculative_wins += 1
            for other_id, other in list(self._leases.items()):
                if other.position == position:
                    del self._leases[other_id]
                    if other.speculative:
                        self.stats.speculative_losses += 1
            return "accepted"

    def fail(
        self,
        lease_id: int,
        worker: str,
        position: int,
        transient: bool,
        message: str,
        now: float,
    ) -> None:
        """A worker reports its shard raised.

        Transient failures re-enter the queue under the attempt budget;
        deterministic ones poison the batch — retrying a pure function
        cannot change its outcome, so the run must fail fast.
        """
        with self._lock:
            self._touch_locked(worker, now)
            self._leases.pop(lease_id, None)
            if position in self._committed:
                return
            if not transient:
                self._poison_locked(message)
                return
            self._requeue_locked(position)

    def _poison_locked(self, message: str) -> bool:
        if self._error is None:
            self._error = message
        return True

    def scan(self, now: float) -> None:
        """Reclaim leases from dead workers and past-deadline shards."""
        with self._lock:
            held: Dict[str, List[int]] = {}
            for lease in self._leases.values():
                held.setdefault(lease.worker, []).append(lease.lease_id)
            for worker, state in list(self._workers.items()):
                age = now - state.last_contact
                holding = held.get(worker, [])
                if age > self.policy.heartbeat_timeout:
                    if holding:
                        self.stats.worker_deaths += 1
                        for lease_id in holding:
                            lease = self._leases.pop(lease_id, None)
                            if lease is None:
                                continue
                            self.stats.leases_reclaimed += 1
                            self._requeue_locked(lease.position)
                    del self._workers[worker]
                elif (
                    holding
                    and age > 2.0 * self.policy.heartbeat_interval
                    and not state.silent_flagged
                ):
                    self.stats.heartbeats_missed += 1
                    state.silent_flagged = True
            for lease_id, lease in list(self._leases.items()):
                if lease.deadline < now:
                    del self._leases[lease_id]
                    self.stats.leases_reclaimed += 1
                    self._requeue_locked(lease.position)

    def abandon_remaining(self) -> None:
        """Mark every unfinished position spent and stop granting.

        The no-live-workers escape hatch: the caller's local ladder
        finishes spent positions, so the run completes even when the
        whole fleet is gone.  Late commits for spent positions are
        still accepted (identical bytes either way)."""
        with self._lock:
            self._closed = True
            for position, _ in self._pending:
                if position not in self._committed:
                    self._spent.add(position)
            self._pending.clear()
            for lease in self._leases.values():
                if lease.position not in self._committed:
                    self._spent.add(lease.position)
            self._leases.clear()

    # -- observation -------------------------------------------------------

    def take_new_commits(self) -> List[Tuple[int, bytes]]:
        """Committed payloads not yet handed to the caller, by position."""
        with self._lock:
            fresh = sorted(
                position
                for position in self._committed
                if position not in self._delivered
            )
            self._delivered.update(fresh)
            return [
                (position, self._committed[position]) for position in fresh
            ]

    def state(self, now: float) -> _QueueState:
        with self._lock:
            finished = self._error is not None or (
                not self._pending
                and not self._leases
                and all(
                    position in self._committed or position in self._spent
                    for position in range(self.n)
                )
            )
            live = sum(
                1
                for state in self._workers.values()
                if now - state.last_contact <= self.policy.heartbeat_timeout
            )
            return _QueueState(
                finished=finished,
                error=self._error,
                live_workers=live,
                outstanding=len(self._leases),
                pending=len(self._pending),
            )

    @property
    def error(self) -> Optional[str]:
        with self._lock:
            return self._error

    def spent_positions(self) -> List[int]:
        """Positions the caller must finish locally, sorted."""
        with self._lock:
            return sorted(
                position
                for position in self._spent
                if position not in self._committed
            )


@dataclass
class _Batch:
    """One ``execute_many`` call's work, as the server schedules it."""

    id: str
    seq: int
    queue: LeaseQueue
    config_blob: bytes
    shard_blobs: List[bytes]
    cache_keys: Optional[List[str]]
    progress: threading.Event = field(default_factory=threading.Event)


class _CoordinatorHandler(socketserver.BaseRequestHandler):
    """One request frame, one reply frame, close."""

    server: "CoordinatorServer"

    def handle(self) -> None:
        try:
            header, payload = recv_frame(self.request)
            reply, reply_payload = self.server.dispatch(header, payload)
            send_frame(self.request, reply, reply_payload)
        except (OSError, ProtocolError):
            # A dropped/garbled connection is the *worker's* problem to
            # retry; the coordinator's state machine is only advanced by
            # complete frames.
            pass


class CoordinatorServer(socketserver.ThreadingTCPServer):
    """TCP front of the lease queue(s); one server may schedule several
    concurrent batches (a job server running distributed jobs)."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, address: Tuple[str, int]) -> None:
        super().__init__(address, _CoordinatorHandler)
        self._lock = threading.Lock()
        self._batches: Dict[str, _Batch] = {}
        self._batch_seq = 0
        # Batch ids are namespaced by a per-server nonce: a worker
        # daemon outliving this coordinator must never mistake a
        # successor's batch for one it already fetched the config of
        # (sequential ids restart at 1 in every server process).
        self._batch_nonce = uuid.uuid4().hex[:12]
        self._thread: Optional[threading.Thread] = None

    # -- batch lifecycle ---------------------------------------------------

    def submit_batch(
        self,
        shard_blobs: List[bytes],
        config_blob: bytes,
        retry: Optional[RetryPolicy] = None,
        policy: Optional[DistPolicy] = None,
        cache_keys: Optional[List[str]] = None,
    ) -> _Batch:
        """Register a batch of shards for workers to pull."""
        if cache_keys is not None and len(cache_keys) != len(shard_blobs):
            raise ValueError("cache_keys must match shard_blobs in length")
        with self._lock:
            self._batch_seq += 1
            batch = _Batch(
                id=f"{self._batch_nonce}-{self._batch_seq}",
                seq=self._batch_seq,
                queue=LeaseQueue(len(shard_blobs), retry=retry, policy=policy),
                config_blob=config_blob,
                shard_blobs=shard_blobs,
                cache_keys=cache_keys,
            )
            self._batches[batch.id] = batch
            return batch

    def finish_batch(self, batch_id: str) -> None:
        with self._lock:
            self._batches.pop(batch_id, None)

    def _batch(self, batch_id) -> Optional[_Batch]:
        with self._lock:
            return self._batches.get(batch_id)

    def _batches_in_order(self) -> List[_Batch]:
        with self._lock:
            return sorted(self._batches.values(), key=lambda b: b.seq)

    # -- protocol dispatch -------------------------------------------------

    def dispatch(self, header: dict, payload: bytes) -> Tuple[dict, bytes]:
        """Route one request frame; returns the reply frame."""
        kind = header.get("type")
        now = time.monotonic()
        if kind == "ping":
            return {"type": "pong"}, b""
        if kind == "lease":
            return self._handle_lease(header, now)
        if kind == "config":
            batch = self._batch(header.get("batch"))
            if batch is None:
                return {"type": "gone"}, b""
            return {"type": "config"}, batch.config_blob
        if kind == "heartbeat":
            batch = self._batch(header.get("batch"))
            alive = False
            if batch is not None:
                alive = batch.queue.heartbeat(
                    str(header.get("worker")), header.get("lease"), now
                )
            return {"type": "ok", "live": alive}, b""
        if kind == "commit":
            batch = self._batch(header.get("batch"))
            if batch is None:
                return {"type": "gone"}, b""
            outcome = batch.queue.commit(
                header.get("lease"),
                str(header.get("worker")),
                header.get("position", -1),
                payload,
                now,
            )
            batch.progress.set()
            return {"type": "ok", "outcome": outcome}, b""
        if kind == "fail":
            batch = self._batch(header.get("batch"))
            if batch is not None:
                batch.queue.fail(
                    header.get("lease"),
                    str(header.get("worker")),
                    header.get("position", -1),
                    bool(header.get("transient")),
                    str(header.get("error", "worker reported a failure")),
                    now,
                )
                batch.progress.set()
            return {"type": "ok"}, b""
        return {
            "type": "error",
            "message": f"unknown message type {kind!r}",
        }, b""

    def _handle_lease(self, header: dict, now: float) -> Tuple[dict, bytes]:
        worker = str(header.get("worker"))
        hint = DistPolicy().wait_hint
        for batch in self._batches_in_order():
            batch.queue.scan(now)
            lease = batch.queue.grant(worker, now)
            hint = batch.queue.policy.wait_hint
            if lease is None:
                continue
            batch.progress.set()
            cache_key = None
            if batch.cache_keys is not None:
                cache_key = batch.cache_keys[lease.position]
            return (
                {
                    "type": "task",
                    "batch": batch.id,
                    "lease": lease.lease_id,
                    "position": lease.position,
                    "attempt": lease.attempt,
                    "deadline": lease.deadline - now,
                    "heartbeat": batch.queue.policy.heartbeat_interval,
                    "cache_key": cache_key,
                    "speculative": lease.speculative,
                },
                batch.shard_blobs[lease.position],
            )
        return {"type": "wait", "hint": hint}, b""

    # -- serving -----------------------------------------------------------

    def start(self) -> None:
        """Serve in a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self.serve_forever,
                kwargs={"poll_interval": 0.05},
                daemon=True,
                name="repro-dist-coordinator",
            )
            self._thread.start()

    def stop(self) -> None:
        self.shutdown()
        self.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None


# One coordinator per requested endpoint, shared process-wide — the
# same pattern as the executor's shared process pool: a job server
# running several distributed jobs multiplexes them as concurrent
# batches on one listener instead of fighting over the port.
_registry_lock = threading.Lock()
_servers: Dict[str, CoordinatorServer] = {}


def coordinator_for(endpoint: str) -> CoordinatorServer:
    """Get or create the serving coordinator bound to ``endpoint``
    (``"host:port"``; port 0 binds an ephemeral port — read the real
    one off ``server.server_address``)."""
    from repro.dist.protocol import parse_endpoint

    address = parse_endpoint(endpoint)
    with _registry_lock:
        server = _servers.get(endpoint)
        if server is None:
            server = CoordinatorServer(address)
            server.start()
            _servers[endpoint] = server
            # A ":0" request bound an ephemeral port; register the
            # resolved address too so pipelines handed the real
            # endpoint find this server instead of re-binding the port.
            host, port = server.server_address[:2]
            _servers.setdefault(f"{host}:{port}", server)
        return server


def shutdown_coordinators() -> None:
    """Stop every registry coordinator (tests, benchmarks, atexit)."""
    with _registry_lock:
        servers = list(_servers.values())
        _servers.clear()
    for server in servers:
        server.stop()

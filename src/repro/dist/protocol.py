"""The wire protocol between the lease coordinator and its workers.

One frame per message, both directions::

    +----------------+-----------------+----------------+-------------+
    | header len: u32 | payload len: u32 | header (JSON)  | payload     |
    +----------------+-----------------+----------------+-------------+

Both length fields are big-endian.  The header is a small JSON object
(``{"type": "lease", ...}``) carrying the scheduling conversation; the
payload is opaque bytes — pickled shard/config blobs on the way out,
serialized shard results on the way back.  Every connection carries
exactly one request frame and one reply frame (HTTP/1.0 style): the
coordinator is a :class:`socketserver.ThreadingTCPServer` and one-shot
connections keep its state machine trivially free of per-connection
bookkeeping.

Security model: pickled payloads are executed on receipt, so this
protocol is for a *trusted* cluster segment (localhost or a private
LAN), exactly like the process pool it extends — never expose the
coordinator port to untrusted peers.
"""

from __future__ import annotations

import json
import socket
import struct
from typing import Optional, Tuple

#: Frame prefix: big-endian header length + payload length.
_FRAME = struct.Struct(">II")

#: Refuse frames beyond this many bytes per part — a corrupt or hostile
#: length prefix must not trigger a giant allocation.
MAX_PART = 1 << 30


class ProtocolError(ConnectionError):
    """A malformed, truncated or oversized frame.

    Subclasses :class:`ConnectionError` (an ``OSError``) so callers'
    existing transient-fault handling — ``RetryPolicy.is_transient``
    above all — classifies a garbled conversation exactly like a
    dropped one.
    """


def parse_endpoint(text: str) -> Tuple[str, int]:
    """Split ``"host:port"`` into a connectable address tuple."""
    host, sep, port_text = text.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"endpoint must look like host:port, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"endpoint port must be an integer, got {text!r}"
        ) from None
    if not 0 <= port <= 65535:
        raise ValueError(f"endpoint port out of range in {text!r}")
    return host, port


def send_frame(sock: socket.socket, header: dict, payload: bytes = b"") -> None:
    """Send one framed message."""
    head = json.dumps(header, separators=(",", ":")).encode("utf-8")
    sock.sendall(_FRAME.pack(len(head), len(payload)) + head + payload)


def recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ProtocolError`."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ProtocolError(
                f"connection closed mid-frame ({remaining} of {n} bytes "
                "missing)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Tuple[dict, bytes]:
    """Receive one framed message as ``(header, payload)``."""
    head_len, payload_len = _FRAME.unpack(recv_exact(sock, _FRAME.size))
    if head_len > MAX_PART or payload_len > MAX_PART:
        raise ProtocolError(
            f"frame part too large ({head_len}/{payload_len} bytes)"
        )
    try:
        header = json.loads(recv_exact(sock, head_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(
            f"frame header must be an object, got {type(header).__name__}"
        )
    return header, recv_exact(sock, payload_len)


def request(
    address: Tuple[str, int],
    header: dict,
    payload: bytes = b"",
    timeout: Optional[float] = 10.0,
) -> Tuple[dict, bytes]:
    """One-shot RPC: connect, send one frame, receive one reply.

    Raises ``OSError`` (including :class:`ProtocolError`) on any
    connection or framing trouble — callers decide whether to retry.
    """
    with socket.create_connection(address, timeout=timeout) as sock:
        send_frame(sock, header, payload)
        return recv_frame(sock)

"""Electron-optical column model: spot size versus beam current.

The classic Gaussian-column error budget adds four contributions in
quadrature::

    d² = d_gauss² + d_sphere² + d_chromatic² + d_diffraction²

    d_gauss      = (2/π) · sqrt(I / B) / α     (source image, brightness B)
    d_sphere     = 0.5 · Cs · α³
    d_chromatic  = Cc · (ΔE/E) · α
    d_diffraction= 0.61 · λ / α

with ``α`` the beam half-angle at the target.  For each requested current
there is an optimal ``α``; the resulting d(I) trade-off is the fundamental
resolution/throughput limit of a Gaussian-beam machine (experiment T4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.physics.constants import relativistic_wavelength_nm


@dataclass(frozen=True)
class ElectronSource:
    """An electron source characterized by its reduced brightness.

    Attributes:
        name: source type.
        brightness: axial brightness at 20 kV [A/cm²/sr].
        energy_spread_ev: FWHM energy spread [eV].
    """

    name: str
    brightness: float
    energy_spread_ev: float

    def brightness_at(self, energy_kev: float) -> float:
        """Brightness scaled linearly with accelerating voltage."""
        if energy_kev <= 0:
            raise ValueError("energy must be positive")
        return self.brightness * energy_kev / 20.0


#: Thermionic tungsten hairpin (the 1960s baseline).
TUNGSTEN = ElectronSource("W hairpin", brightness=1.0e5, energy_spread_ev=2.5)

#: Lanthanum-hexaboride thermionic gun (EBES-class machines).
LAB6 = ElectronSource("LaB6", brightness=1.0e6, energy_spread_ev=1.5)

#: Cold field emission (the emerging option in 1979).
FIELD_EMISSION = ElectronSource(
    "Field emission", brightness=1.0e8, energy_spread_ev=0.3
)


class Column:
    """A Gaussian electron-optical column.

    Args:
        source: electron source.
        energy_kev: accelerating voltage [kV ≡ keV].
        spherical_aberration_mm: Cs of the final lens [mm].
        chromatic_aberration_mm: Cc of the final lens [mm].
    """

    def __init__(
        self,
        source: ElectronSource = LAB6,
        energy_kev: float = 20.0,
        spherical_aberration_mm: float = 50.0,
        chromatic_aberration_mm: float = 20.0,
    ) -> None:
        if energy_kev <= 0:
            raise ValueError("energy must be positive")
        if spherical_aberration_mm <= 0 or chromatic_aberration_mm <= 0:
            raise ValueError("aberration coefficients must be positive")
        self.source = source
        self.energy_kev = energy_kev
        self.cs_um = spherical_aberration_mm * 1e3
        self.cc_um = chromatic_aberration_mm * 1e3

    # -- spot size budget ----------------------------------------------

    def spot_size(self, current_a: float, half_angle_rad: float) -> float:
        """Total spot diameter [µm] at ``current_a`` and aperture ``α``."""
        if current_a <= 0 or half_angle_rad <= 0:
            raise ValueError("current and half-angle must be positive")
        contributions = self.spot_contributions(current_a, half_angle_rad)
        return math.sqrt(sum(c * c for c in contributions))

    def spot_contributions(
        self, current_a: float, half_angle_rad: float
    ) -> Tuple[float, float, float, float]:
        """``(d_gauss, d_sphere, d_chromatic, d_diffraction)`` in µm."""
        brightness = self.source.brightness_at(self.energy_kev)  # A/cm²/sr
        brightness_um = brightness / 1e8  # A/µm²/sr
        d_gauss = (
            (2.0 / math.pi)
            * math.sqrt(current_a / brightness_um)
            / half_angle_rad
        )
        d_sphere = 0.5 * self.cs_um * half_angle_rad**3
        delta_e = self.source.energy_spread_ev / (self.energy_kev * 1e3)
        d_chromatic = self.cc_um * delta_e * half_angle_rad
        wavelength_um = relativistic_wavelength_nm(self.energy_kev) * 1e-3
        d_diffraction = 0.61 * wavelength_um / half_angle_rad
        return (d_gauss, d_sphere, d_chromatic, d_diffraction)

    def optimal_half_angle(self, current_a: float) -> float:
        """Aperture α minimizing spot size at ``current_a`` [rad]."""
        angles = np.geomspace(1e-4, 5e-2, 400)
        sizes = [self.spot_size(current_a, a) for a in angles]
        best = int(np.argmin(sizes))
        # Refine once around the coarse optimum.
        lo = angles[max(best - 1, 0)]
        hi = angles[min(best + 1, len(angles) - 1)]
        fine = np.linspace(lo, hi, 200)
        sizes_fine = [self.spot_size(current_a, a) for a in fine]
        return float(fine[int(np.argmin(sizes_fine))])

    def best_spot_size(self, current_a: float) -> float:
        """Minimum achievable spot diameter [µm] at ``current_a``."""
        return self.spot_size(current_a, self.optimal_half_angle(current_a))

    def max_current_for_spot(self, spot_um: float) -> float:
        """Largest current [A] that still fits in a ``spot_um`` spot.

        Solved by bisection on the monotone ``best_spot_size`` curve.

        Raises:
            ValueError: if the spot is unachievable even at zero current.
        """
        if spot_um <= 0:
            raise ValueError("spot size must be positive")
        lo, hi = 1e-13, 1e-4
        if self.best_spot_size(lo) > spot_um:
            raise ValueError(
                f"spot {spot_um} µm unachievable (aberration floor "
                f"{self.best_spot_size(lo):.4f} µm)"
            )
        while self.best_spot_size(hi) < spot_um:
            hi *= 4.0
            if hi > 1.0:
                break
        for _ in range(60):
            mid = math.sqrt(lo * hi)
            if self.best_spot_size(mid) < spot_um:
                lo = mid
            else:
                hi = mid
        return lo

    def current_density(self, current_a: float) -> float:
        """Current density in the focused spot [A/cm²]."""
        d = self.best_spot_size(current_a)
        area_cm2 = math.pi * (d / 2.0) ** 2 / 1e8
        return current_a / area_cm2

    def __repr__(self) -> str:
        return (
            f"Column({self.source.name}, {self.energy_kev:g} kV, "
            f"Cs={self.cs_um / 1e3:g} mm, Cc={self.cc_um / 1e3:g} mm)"
        )

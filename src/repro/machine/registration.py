"""Registration: mark detection and alignment-transform fitting.

Before writing each field (or chip), the machine scans the beam across
fiducial marks, detects their positions from the backscattered-electron
signal, and fits an alignment transform.  This module simulates the
chain:

* :func:`mark_signal` — BSE line-scan across an edge mark: an error-
  function edge of finite beam size plus shot/amplifier noise.
* :func:`detect_edge` — threshold-crossing estimator with sub-sample
  interpolation; :func:`detect_mark_center` for two-edge marks.
* :class:`RegistrationFit` / :func:`fit_registration` — least-squares
  affine alignment from measured mark offsets, with residuals.
* :func:`detection_error_model` — Monte-Carlo σ of the detector vs. SNR,
  the curve that feeds the overlay budget of experiment F4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from scipy.special import erf


def mark_signal(
    positions: np.ndarray,
    edge_position: float,
    beam_size: float,
    contrast: float = 1.0,
    noise: float = 0.0,
    rng: Optional[np.random.Generator] = None,
) -> np.ndarray:
    """Backscatter signal of a line scan across a single mark edge.

    The edge response is the beam profile integrated across a step:
    ``0.5·contrast·(1 + erf((x − x_edge)/σ))`` plus Gaussian noise.
    """
    if beam_size <= 0:
        raise ValueError("beam size must be positive")
    signal = 0.5 * contrast * (1.0 + erf((positions - edge_position) / beam_size))
    if noise > 0:
        if rng is None:
            rng = np.random.default_rng()
        signal = signal + rng.normal(0.0, noise, signal.shape)
    return signal


def detect_edge(
    positions: np.ndarray, signal: np.ndarray, threshold: Optional[float] = None
) -> float:
    """Estimate the edge position by threshold crossing.

    Uses the half-amplitude threshold by default and interpolates
    linearly between samples.  Averages all crossings (noise can create
    several) weighted toward the longest monotone segment.

    Raises:
        ValueError: if the signal never crosses the threshold.
    """
    if threshold is None:
        threshold = 0.5 * (float(signal.min()) + float(signal.max()))
    above = signal >= threshold
    crossings = []
    for i in range(len(signal) - 1):
        if above[i] != above[i + 1]:
            v0, v1 = signal[i], signal[i + 1]
            t = (threshold - v0) / (v1 - v0)
            crossings.append(positions[i] + t * (positions[i + 1] - positions[i]))
    if not crossings:
        raise ValueError("signal never crosses the detection threshold")
    return float(np.median(crossings))


def detect_mark_center(
    positions: np.ndarray,
    signal: np.ndarray,
) -> float:
    """Centre of a two-edge (line) mark: midpoint of rising and falling
    edges, estimated from the derivative extrema neighbourhoods."""
    threshold = 0.5 * (float(signal.min()) + float(signal.max()))
    above = signal >= threshold
    rising = None
    falling = None
    for i in range(len(signal) - 1):
        if not above[i] and above[i + 1] and rising is None:
            v0, v1 = signal[i], signal[i + 1]
            t = (threshold - v0) / (v1 - v0)
            rising = positions[i] + t * (positions[i + 1] - positions[i])
        if above[i] and not above[i + 1]:
            v0, v1 = signal[i], signal[i + 1]
            t = (threshold - v0) / (v1 - v0)
            falling = positions[i] + t * (positions[i + 1] - positions[i])
    if rising is None or falling is None:
        raise ValueError("mark needs both a rising and a falling edge")
    return 0.5 * (rising + falling)


def detection_error_model(
    beam_size: float,
    noise: float,
    scans: int = 200,
    span: float = 4.0,
    samples: int = 200,
    seed: int = 0,
) -> float:
    """Monte-Carlo 1σ of the edge detector at a given noise level.

    Args:
        beam_size: beam σ [µm].
        noise: RMS signal noise (signal amplitude = 1).
        scans: Monte-Carlo repetitions.
        span: scan half-width in units of ``beam_size``.
        samples: samples per scan.

    Returns:
        The standard deviation of the detected edge position [µm].
    """
    rng = np.random.default_rng(seed)
    positions = np.linspace(-span * beam_size, span * beam_size, samples)
    errors = []
    for _ in range(scans):
        signal = mark_signal(
            positions, 0.0, beam_size, noise=noise, rng=rng
        )
        try:
            errors.append(detect_edge(positions, signal))
        except ValueError:
            continue
    if not errors:
        return float("inf")
    return float(np.std(errors))


# ---------------------------------------------------------------------------
# Alignment-transform fitting
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RegistrationFit:
    """A fitted affine alignment.

    The model is ``measured = nominal + (tx, ty) + M·nominal`` with M a
    small 2x2 linear correction (scale/rotation/shear).

    Attributes:
        translation: ``(tx, ty)`` [µm].
        matrix: the 2x2 linear correction.
        residual_rms: RMS mark residual after the fit [µm].
        residual_max: worst mark residual [µm].
        marks: marks used.
    """

    translation: Tuple[float, float]
    matrix: Tuple[Tuple[float, float], Tuple[float, float]]
    residual_rms: float
    residual_max: float
    marks: int

    def rotation_urad(self) -> float:
        """Rotation component of the linear correction [µrad]."""
        return 0.5 * (self.matrix[1][0] - self.matrix[0][1]) * 1e6

    def scale_ppm(self) -> float:
        """Isotropic scale component [ppm]."""
        return 0.5 * (self.matrix[0][0] + self.matrix[1][1]) * 1e6

    def apply(self, x: float, y: float) -> Tuple[float, float]:
        """Map a nominal position through the fitted alignment."""
        mx = self.matrix
        return (
            x + self.translation[0] + mx[0][0] * x + mx[0][1] * y,
            y + self.translation[1] + mx[1][0] * x + mx[1][1] * y,
        )


def fit_registration(
    nominal: Sequence[Tuple[float, float]],
    measured: Sequence[Tuple[float, float]],
    linear: bool = True,
) -> RegistrationFit:
    """Least-squares alignment fit from mark positions.

    Args:
        nominal: designed mark positions.
        measured: detected mark positions (same order).
        linear: fit the 2x2 linear term (needs ≥3 marks); otherwise fit
            translation only.

    Raises:
        ValueError: on mismatched or insufficient mark counts.
    """
    if len(nominal) != len(measured):
        raise ValueError("nominal and measured mark counts differ")
    n = len(nominal)
    if n < 1 or (linear and n < 3):
        raise ValueError("not enough marks for the requested model")
    nom = np.asarray(nominal, dtype=float)
    mea = np.asarray(measured, dtype=float)
    delta = mea - nom

    if linear:
        # Per-axis design matrix: [1, x, y].
        design = np.column_stack([np.ones(n), nom[:, 0], nom[:, 1]])
        cx, *_ = np.linalg.lstsq(design, delta[:, 0], rcond=None)
        cy, *_ = np.linalg.lstsq(design, delta[:, 1], rcond=None)
        translation = (float(cx[0]), float(cy[0]))
        matrix = ((float(cx[1]), float(cx[2])), (float(cy[1]), float(cy[2])))
        predicted = np.column_stack([design @ cx, design @ cy])
    else:
        translation = (float(delta[:, 0].mean()), float(delta[:, 1].mean()))
        matrix = ((0.0, 0.0), (0.0, 0.0))
        predicted = np.tile(translation, (n, 1))

    residuals = delta - predicted
    magnitude = np.hypot(residuals[:, 0], residuals[:, 1])
    return RegistrationFit(
        translation=translation,
        matrix=matrix,
        residual_rms=float(np.sqrt(np.mean(magnitude**2))),
        residual_max=float(magnitude.max()),
        marks=n,
    )

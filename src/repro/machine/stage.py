"""Laser-interferometer stage model."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class Stage:
    """A writing stage.

    Attributes:
        velocity: maximum velocity [µm/s].
        acceleration: acceleration [µm/s²].
        settle_time: settling time after each stop-and-go move [s].
        position_noise: 1σ residual position error after settling [µm]
            (laser interferometer + servo noise) — feeds the stitching
            error budget.
        continuous: True for continuously moving stages (EBES style),
            where per-field settling does not apply.
    """

    velocity: float = 2.0e4
    acceleration: float = 1.0e5
    settle_time: float = 0.05
    position_noise: float = 0.05
    continuous: bool = False

    def __post_init__(self) -> None:
        if self.velocity <= 0 or self.acceleration <= 0:
            raise ValueError("velocity and acceleration must be positive")
        if self.settle_time < 0 or self.position_noise < 0:
            raise ValueError("settle time and noise must be non-negative")

    def move_time(self, distance: float) -> float:
        """Time for one stop-and-go move of ``distance`` µm.

        Uses the trapezoidal velocity profile: accelerate, cruise (if the
        distance is long enough), decelerate, settle.  Continuous stages
        report only the transit time at cruise velocity.
        """
        distance = abs(distance)
        if distance == 0:
            return 0.0
        if self.continuous:
            return distance / self.velocity
        d_accel = self.velocity**2 / self.acceleration  # accel + decel span
        if distance <= d_accel:
            travel = 2.0 * math.sqrt(distance / self.acceleration)
        else:
            travel = (
                2.0 * self.velocity / self.acceleration
                + (distance - d_accel) / self.velocity
            )
        return travel + self.settle_time

    def serpentine_time(
        self, field_size: float, columns: int, rows: int
    ) -> float:
        """Total stage time to visit a ``columns × rows`` field grid.

        Fields are visited in boustrophedon (serpentine) order, the
        standard minimal-motion schedule.
        """
        if columns < 1 or rows < 1:
            raise ValueError("grid must be at least 1x1")
        moves = columns * rows - 1
        return moves * self.move_time(field_size)

"""Run-length encoding of fractured patterns for the raster datapath.

The EBES-class machines did not store bitmaps: the data path expanded a
figure stream into per-scanline (start, length) runs on the fly and fed
the blanker.  This module performs that expansion faithfully:

* :func:`encode_figures` — trapezoid list → per-scanline runs on the
  machine address grid, with overlapping runs merged.
* :func:`decode_to_coverage` — runs → binary address map (for
  verification against the rasterizer).
* :func:`encoded_bytes` — the exact stream size in the 2-word-per-run
  format (replacing the estimate in :mod:`repro.machine.datapath`).

Runs use the pixel-centre convention: address ``i`` on scanline ``j`` is
written when the point ``(x0 + (i + 0.5)·a, y0 + (j + 0.5)·a)`` lies in
the figure.  Membership is half-open on both axes (``y_bottom <= y <
y_top`` and ``left <= x < right``), so two figures abutting on an edge
that falls exactly on a pixel centre expose that row/column once, not
twice — even when the two figures land in *different* shards of a
machine program, where no run merging can dedupe them — and a figure of
height ``h`` never produces more than ``ceil(h / a)`` scanlines: the
exact stream is bounded by the per-figure estimate of
:func:`repro.machine.datapath.rle_bytes_estimate`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.trapezoid import Trapezoid

#: One run costs two 16-bit words (start, length).
BYTES_PER_RUN = 4

#: Each scanline carries one 16-bit run-count word.
BYTES_PER_LINE = 2

Run = Tuple[int, int]  # (start_address, length)


@dataclass
class RlePattern:
    """A run-length encoded pattern.

    Attributes:
        origin: ``(x0, y0)`` of address (0, 0) in layout units.
        address_unit: address pitch [µm].
        lines: scanline index → sorted, disjoint runs.
        line_count: total scanlines spanned (including empty ones).
    """

    origin: Tuple[float, float]
    address_unit: float
    lines: Dict[int, List[Run]]
    line_count: int

    def run_count(self) -> int:
        """Total number of runs."""
        return sum(len(runs) for runs in self.lines.values())

    def written_addresses(self) -> int:
        """Total addresses written (beam-on address count)."""
        return sum(
            length for runs in self.lines.values() for _, length in runs
        )

    def encoded_bytes(self) -> int:
        """Exact stream size: run words plus per-line count words."""
        return self.run_count() * BYTES_PER_RUN + self.line_count * BYTES_PER_LINE


def encode_figures(
    figures: Sequence[Trapezoid],
    address_unit: float,
    origin: Tuple[float, float] | None = None,
) -> RlePattern:
    """Expand a figure list into per-scanline runs.

    Args:
        figures: disjoint machine figures.
        address_unit: machine address pitch [µm].
        origin: address-grid origin; defaults to the figure bbox corner.

    Returns:
        The encoded pattern, with overlapping/adjacent runs merged per
        scanline.

    Raises:
        ValueError: when an explicitly-passed ``origin`` sits above or
            right of a figure, so that a run would fall on a negative
            scanline or address — the grid cannot represent it, and
            silently clipping it would desynchronize ``encoded_bytes``/
            ``line_count`` from ``lines``.
    """
    if address_unit <= 0:
        raise ValueError("address unit must be positive")
    if not figures:
        return RlePattern((0.0, 0.0), address_unit, {}, 0)
    boxes = [f.bounding_box() for f in figures]
    if origin is None:
        origin = (min(b[0] for b in boxes), min(b[1] for b in boxes))
    x0, y0 = origin
    y_max = max(b[3] for b in boxes)
    line_count = max(1, int(np.ceil((y_max - y0) / address_unit)))

    lines: Dict[int, List[Run]] = {}
    for figure in figures:
        _add_figure_runs(lines, figure, x0, y0, address_unit)

    for index in lines:
        lines[index] = _merge_runs(lines[index])
    return RlePattern((x0, y0), address_unit, lines, line_count)


def _add_figure_runs(
    lines: Dict[int, List[Run]],
    figure: Trapezoid,
    x0: float,
    y0: float,
    a: float,
) -> None:
    # Zero-height (degenerate) figures carry no area and no scanline can
    # have its centre strictly inside them; skip instead of dividing by
    # a zero height below.
    if figure.height <= 0.0:
        return
    bbox = figure.bounding_box()
    first = int(np.floor((bbox[1] - y0) / a))
    last = int(np.ceil((bbox[3] - y0) / a))
    for j in range(first, last):
        y = y0 + (j + 0.5) * a
        # Half-open membership: a shared horizontal edge exactly on a
        # pixel-centre row belongs to the upper figure only.
        if not (figure.y_bottom <= y < figure.y_top):
            continue
        t = (y - figure.y_bottom) / figure.height
        left = figure.x_bottom_left + t * (figure.x_top_left - figure.x_bottom_left)
        right = figure.x_bottom_right + t * (
            figure.x_top_right - figure.x_bottom_right
        )
        # Addresses whose centres fall inside [left, right): the right
        # edge is exclusive, mirroring the scanline convention, so a
        # shared vertical edge exactly on a pixel centre belongs to the
        # right-hand figure only (ceil - 1 drops an exactly-on-edge
        # centre that floor would keep).
        start = int(np.ceil((left - x0) / a - 0.5))
        end = int(np.ceil((right - x0) / a - 0.5)) - 1
        if end < start:
            continue
        if j < 0 or start < 0:
            raise ValueError(
                f"figure {figure!r} extends below/left of the address-grid "
                f"origin ({x0:g}, {y0:g}); pass an origin at or below the "
                "figure bounding box"
            )
        lines.setdefault(j, []).append((start, end - start + 1))


def _merge_runs(runs: List[Run]) -> List[Run]:
    """Sort runs and merge overlaps/adjacencies."""
    runs.sort()
    merged: List[Run] = []
    for start, length in runs:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            prev_start, prev_len = merged[-1]
            merged[-1] = (
                prev_start,
                max(prev_start + prev_len, start + length) - prev_start,
            )
        else:
            merged.append((start, length))
    return merged


def decode_to_coverage(
    pattern: RlePattern, width_addresses: int
) -> np.ndarray:
    """Expand runs back into a binary address map (verification aid)."""
    grid = np.zeros((pattern.line_count, width_addresses), dtype=bool)
    for j, runs in pattern.lines.items():
        if not (0 <= j < pattern.line_count):
            continue
        for start, length in runs:
            grid[j, start : min(start + length, width_addresses)] = True
    return grid


def stream_rate_required(
    pattern: RlePattern, pixel_rate: float, width_addresses: int
) -> float:
    """Bytes/s the channel must sustain to keep the raster beam fed.

    The scan consumes addresses at ``pixel_rate``; the stream must
    deliver each scanline's runs within that line's scan time.
    """
    if pixel_rate <= 0 or width_addresses <= 0:
        raise ValueError("pixel rate and width must be positive")
    line_time = width_addresses / pixel_rate
    worst_line_bytes = max(
        (len(runs) * BYTES_PER_RUN + BYTES_PER_LINE
         for runs in pattern.lines.values()),
        default=BYTES_PER_LINE,
    )
    return worst_line_bytes / line_time

"""Run-length encoding of fractured patterns for the raster datapath.

The EBES-class machines did not store bitmaps: the data path expanded a
figure stream into per-scanline (start, length) runs on the fly and fed
the blanker.  This module performs that expansion faithfully:

* :func:`encode_figures` — trapezoid list → per-scanline runs on the
  machine address grid, with overlapping runs merged.
* :func:`decode_to_coverage` — runs → binary address map (for
  verification against the rasterizer).
* :func:`encoded_bytes` — the exact stream size in the 2-word-per-run
  format (replacing the estimate in :mod:`repro.machine.datapath`).

Runs use the pixel-centre convention: address ``i`` on scanline ``j`` is
written when the point ``(x0 + (i + 0.5)·a, y0 + (j + 0.5)·a)`` lies in
the figure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.geometry.trapezoid import Trapezoid

#: One run costs two 16-bit words (start, length).
BYTES_PER_RUN = 4

#: Each scanline carries one 16-bit run-count word.
BYTES_PER_LINE = 2

Run = Tuple[int, int]  # (start_address, length)


@dataclass
class RlePattern:
    """A run-length encoded pattern.

    Attributes:
        origin: ``(x0, y0)`` of address (0, 0) in layout units.
        address_unit: address pitch [µm].
        lines: scanline index → sorted, disjoint runs.
        line_count: total scanlines spanned (including empty ones).
    """

    origin: Tuple[float, float]
    address_unit: float
    lines: Dict[int, List[Run]]
    line_count: int

    def run_count(self) -> int:
        """Total number of runs."""
        return sum(len(runs) for runs in self.lines.values())

    def written_addresses(self) -> int:
        """Total addresses written (beam-on address count)."""
        return sum(
            length for runs in self.lines.values() for _, length in runs
        )

    def encoded_bytes(self) -> int:
        """Exact stream size: run words plus per-line count words."""
        return self.run_count() * BYTES_PER_RUN + self.line_count * BYTES_PER_LINE


def encode_figures(
    figures: Sequence[Trapezoid],
    address_unit: float,
    origin: Tuple[float, float] | None = None,
) -> RlePattern:
    """Expand a figure list into per-scanline runs.

    Args:
        figures: disjoint machine figures.
        address_unit: machine address pitch [µm].
        origin: address-grid origin; defaults to the figure bbox corner.

    Returns:
        The encoded pattern, with overlapping/adjacent runs merged per
        scanline.
    """
    if address_unit <= 0:
        raise ValueError("address unit must be positive")
    if not figures:
        return RlePattern((0.0, 0.0), address_unit, {}, 0)
    boxes = [f.bounding_box() for f in figures]
    if origin is None:
        origin = (min(b[0] for b in boxes), min(b[1] for b in boxes))
    x0, y0 = origin
    y_max = max(b[3] for b in boxes)
    line_count = max(1, int(np.ceil((y_max - y0) / address_unit)))

    lines: Dict[int, List[Run]] = {}
    for figure in figures:
        _add_figure_runs(lines, figure, x0, y0, address_unit)

    for index in lines:
        lines[index] = _merge_runs(lines[index])
    return RlePattern((x0, y0), address_unit, lines, line_count)


def _add_figure_runs(
    lines: Dict[int, List[Run]],
    figure: Trapezoid,
    x0: float,
    y0: float,
    a: float,
) -> None:
    bbox = figure.bounding_box()
    first = max(0, int(np.floor((bbox[1] - y0) / a)))
    last = int(np.ceil((bbox[3] - y0) / a))
    for j in range(first, last):
        y = y0 + (j + 0.5) * a
        if not (figure.y_bottom <= y <= figure.y_top):
            continue
        t = (y - figure.y_bottom) / figure.height
        left = figure.x_bottom_left + t * (figure.x_top_left - figure.x_bottom_left)
        right = figure.x_bottom_right + t * (
            figure.x_top_right - figure.x_bottom_right
        )
        # Addresses whose centres fall inside [left, right].
        start = int(np.ceil((left - x0) / a - 0.5))
        end = int(np.floor((right - x0) / a - 0.5))
        if end < start:
            continue
        start = max(start, 0)
        lines.setdefault(j, []).append((start, end - start + 1))


def _merge_runs(runs: List[Run]) -> List[Run]:
    """Sort runs and merge overlaps/adjacencies."""
    runs.sort()
    merged: List[Run] = []
    for start, length in runs:
        if merged and start <= merged[-1][0] + merged[-1][1]:
            prev_start, prev_len = merged[-1]
            merged[-1] = (
                prev_start,
                max(prev_start + prev_len, start + length) - prev_start,
            )
        else:
            merged.append((start, length))
    return merged


def decode_to_coverage(
    pattern: RlePattern, width_addresses: int
) -> np.ndarray:
    """Expand runs back into a binary address map (verification aid)."""
    grid = np.zeros((pattern.line_count, width_addresses), dtype=bool)
    for j, runs in pattern.lines.items():
        if not (0 <= j < pattern.line_count):
            continue
        for start, length in runs:
            grid[j, start : min(start + length, width_addresses)] = True
    return grid


def stream_rate_required(
    pattern: RlePattern, pixel_rate: float, width_addresses: int
) -> float:
    """Bytes/s the channel must sustain to keep the raster beam fed.

    The scan consumes addresses at ``pixel_rate``; the stream must
    deliver each scanline's runs within that line's scan time.
    """
    if pixel_rate <= 0 or width_addresses <= 0:
        raise ValueError("pixel rate and width must be positive")
    line_time = width_addresses / pixel_rate
    worst_line_bytes = max(
        (len(runs) * BYTES_PER_RUN + BYTES_PER_LINE
         for runs in pattern.lines.values()),
        default=BYTES_PER_LINE,
    )
    return worst_line_bytes / line_time

"""Electron-beam pattern-generator machine models.

Analytic models of the three 1979-era machine architectures and their
shared subsystems:

* :class:`~repro.machine.column.Column` — electron-optical column:
  brightness/aberration spot-size model and the current-vs-resolution
  trade-off (experiment T4).
* :class:`~repro.machine.stage.Stage` — laser-interferometer stage with
  stop-and-settle or continuous motion.
* :class:`~repro.machine.deflection.DeflectionField` — deflection
  distortion and polynomial calibration (experiment F4).
* :class:`~repro.machine.raster.RasterScanWriter` — EBES-class raster
  machine: fixed raster, continuously moving stage, density-independent
  write time.
* :class:`~repro.machine.vector.VectorScanWriter` — vector-scan Gaussian
  beam: exposure time proportional to pattern area.
* :class:`~repro.machine.vsb.ShapedBeamWriter` — variable-shaped beam:
  per-shot flashes, throughput set by shot count.
* :mod:`~repro.machine.datapath` — pattern-data volume and data-rate
  ceilings (experiments T3, F5).
* :mod:`~repro.machine.stitching` — field-butting error model.
* :mod:`~repro.machine.program` — machine-program export: prepared
  shards lowered to the RLE / shot-list streams a writer consumes.
"""

from repro.machine.base import Machine, WriteTimeBreakdown
from repro.machine.column import Column, ElectronSource, LAB6, TUNGSTEN, FIELD_EMISSION
from repro.machine.stage import Stage
from repro.machine.deflection import DeflectionField, CalibrationResult
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter
from repro.machine.stitching import StitchingModel, ButtingReport
from repro.machine.rle import RlePattern, encode_figures, decode_to_coverage
from repro.machine.program import (
    MACHINE_MODES,
    MachineProgram,
    MachineProgramError,
    MachineSpec,
    export_program,
)
from repro.machine.registration import (
    RegistrationFit,
    detect_edge,
    detect_mark_center,
    fit_registration,
    mark_signal,
)

__all__ = [
    "Machine",
    "WriteTimeBreakdown",
    "Column",
    "ElectronSource",
    "LAB6",
    "TUNGSTEN",
    "FIELD_EMISSION",
    "Stage",
    "DeflectionField",
    "CalibrationResult",
    "RasterScanWriter",
    "VectorScanWriter",
    "ShapedBeamWriter",
    "StitchingModel",
    "ButtingReport",
    "RlePattern",
    "encode_figures",
    "decode_to_coverage",
    "MACHINE_MODES",
    "MachineProgram",
    "MachineProgramError",
    "MachineSpec",
    "export_program",
    "RegistrationFit",
    "detect_edge",
    "detect_mark_center",
    "fit_registration",
    "mark_signal",
]

"""Machine interface and the write-time breakdown record."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.job import MachineJob


@dataclass
class WriteTimeBreakdown:
    """Where the writing time of a job goes.

    All values in seconds.

    Attributes:
        exposure: beam-on time (dwell/flash time summed over the pattern).
        figure_overhead: per-figure settling/setup time.
        stage: stage motion and settling.
        calibration: field registration and beam calibration.
        data_limited_extra: extra time spent stalled on the pattern data
            channel (0 when the datapath keeps up with the beam).
    """

    exposure: float = 0.0
    figure_overhead: float = 0.0
    stage: float = 0.0
    calibration: float = 0.0
    data_limited_extra: float = 0.0

    @property
    def total(self) -> float:
        """Total write time in seconds."""
        return (
            self.exposure
            + self.figure_overhead
            + self.stage
            + self.calibration
            + self.data_limited_extra
        )

    def as_dict(self) -> Dict[str, float]:
        """Breakdown as a plain dict (for tables and JSON)."""
        return {
            "exposure": self.exposure,
            "figure_overhead": self.figure_overhead,
            "stage": self.stage,
            "calibration": self.calibration,
            "data_limited_extra": self.data_limited_extra,
            "total": self.total,
        }

    def __add__(self, other: "WriteTimeBreakdown") -> "WriteTimeBreakdown":
        return WriteTimeBreakdown(
            self.exposure + other.exposure,
            self.figure_overhead + other.figure_overhead,
            self.stage + other.stage,
            self.calibration + other.calibration,
            self.data_limited_extra + other.data_limited_extra,
        )


class Machine(abc.ABC):
    """A pattern generator: estimates writing time for a machine job."""

    #: Human-readable architecture name.
    name: str = "machine"

    @abc.abstractmethod
    def write_time(self, job: "MachineJob") -> WriteTimeBreakdown:
        """Estimate the time to write ``job`` on this machine."""

    @abc.abstractmethod
    def beam_current(self) -> float:
        """Beam current delivered to the pattern [A]."""

    def dwell_time_per_area(self, dose_uc_per_cm2: float) -> float:
        """Seconds of beam-on time per µm² at the given dose.

        ``t = D · A / I`` with D in µC/cm², A in µm², I in A.
        """
        current = self.beam_current()
        if current <= 0:
            raise ValueError("beam current must be positive")
        dose_c_per_um2 = dose_uc_per_cm2 * 1e-6 / 1e8  # µC/cm² -> C/µm²
        return dose_c_per_um2 / current

"""Vector-scan Gaussian-beam pattern generator.

A vector machine deflects the beam only over pattern figures, so exposure
time is proportional to *exposed area* rather than chip area.  The price
is per-figure deflection settling and stop-and-go stage moves between
fields — the overheads that hand the dense-pattern regime to the raster
machine in experiment T1.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.machine.base import Machine, WriteTimeBreakdown
from repro.machine.column import Column, LAB6
from repro.machine.stage import Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.job import MachineJob


class VectorScanWriter(Machine):
    """A vector-scan Gaussian-beam writer.

    Args:
        spot_size: beam spot (and address) size [µm].
        column: electron-optical column; sets the available current.
        stage: stop-and-go stage.
        field_size: deflection field size [µm].
        figure_settle: deflection settling before each figure [s].
        field_calibration: registration time per field [s].
        current_derating: fraction of the column's limit actually used
            (operating margin for beam stability).
    """

    name = "vector"

    def __init__(
        self,
        spot_size: float = 0.25,
        column: Optional[Column] = None,
        stage: Optional[Stage] = None,
        field_size: float = 2000.0,
        figure_settle: float = 2.0e-6,
        field_calibration: float = 0.2,
        current_derating: float = 0.5,
    ) -> None:
        if spot_size <= 0 or field_size <= 0:
            raise ValueError("spot and field sizes must be positive")
        if not (0.0 < current_derating <= 1.0):
            raise ValueError("current derating must be in (0, 1]")
        self.spot_size = spot_size
        self.column = column if column is not None else Column(LAB6)
        self.stage = stage if stage is not None else Stage()
        self.field_size = field_size
        self.figure_settle = figure_settle
        self.field_calibration = field_calibration
        self.current_derating = current_derating

    def beam_current(self) -> float:
        """Operating beam current [A]."""
        return self.column.max_current_for_spot(self.spot_size) * self.current_derating

    def write_time(self, job: "MachineJob") -> WriteTimeBreakdown:
        """Vector write time: area-proportional exposure plus overheads."""
        area = job.pattern_area()
        dwell_per_area = self.dwell_time_per_area(job.base_dose)
        # Dose-weighted: corrected shots at dose k take k× the time.
        weighted_area = job.dose_weighted_area()
        exposure = weighted_area * dwell_per_area

        figure_overhead = job.figure_count() * self.figure_settle

        x0, y0, x1, y1 = job.bounding_box
        cols = max(1, math.ceil((x1 - x0) / self.field_size))
        rows = max(1, math.ceil((y1 - y0) / self.field_size))
        stage_time = self.stage.serpentine_time(self.field_size, cols, rows)
        calibration = cols * rows * self.field_calibration

        return WriteTimeBreakdown(
            exposure=exposure,
            figure_overhead=figure_overhead,
            stage=stage_time,
            calibration=calibration,
        )

    def __repr__(self) -> str:
        return (
            f"VectorScanWriter(spot={self.spot_size:g} µm, "
            f"field={self.field_size:g} µm)"
        )

"""Machine-program export: lowering prepared shards to writable streams.

The preparation pipeline used to stop at fractured, dose-corrected
figures; the machine models downstream were analysis-only.  This module
closes the loop: each executed shard's corrected figures are *lowered*
into the data stream a pattern generator actually consumes —

* ``raster`` — per-scanline (start, length) runs on the machine address
  grid (:mod:`repro.machine.rle`), the EBES-style run-length datapath.
  ``stream_bytes`` is the **exact** 2-word-per-run size, replacing the
  per-figure estimate of :func:`repro.machine.datapath.rle_bytes_estimate`.
* ``vsb`` / ``vector`` — a shot list with one dose/flash record per
  figure: quantized geometry, relative dose (milli-units) and the beam-on
  time of the flash (VSB) or area dwell (vector) in nanoseconds.

Streaming contract
------------------
Programs are written incrementally, one segment per occupied shard, in
the shard plan's deterministic row-major order.  Only a single shard's
runs/records are ever materialized in memory (``peak_segment_bytes`` is
recorded so benchmarks can assert it), and the byte stream is identical
for ``workers=1`` vs ``workers=N`` and for cold vs warm-cache runs —
the same determinism contract as the executor itself, extended to disk.

Segments are cacheable: with a :class:`~repro.core.cache.ShardCache`
attached, each segment's content address (shard shots + machine spec +
grid origin) is consulted before lowering and stored after, a separate
key family from the shard-result cache.
"""

from __future__ import annotations

import hashlib
import math
import os
import struct
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.jobfile import (
    JobFileError,
    ProgramImage,
    pack_program_header,
    pack_program_segment,
)
from repro.machine.base import Machine, WriteTimeBreakdown
from repro.machine.datapath import (
    ChannelCheck,
    raster_channel_check,
    vector_channel_check,
)
from repro.machine.raster import RasterScanWriter
from repro.machine.rle import BYTES_PER_LINE, BYTES_PER_RUN, Run, encode_figures
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.cache import ShardCache
    from repro.core.executor import ShardResult
    from repro.core.job import MachineJob

#: Supported machine-program architectures.
MACHINE_MODES = ("raster", "vsb", "vector")

#: Raster segment prologue: first scanline index, scanline count.
_RASTER_PROLOGUE = struct.Struct(">iI")
#: Per-scanline run-count word and (start, length) run words — the
#: 16-bit format whose size :func:`repro.machine.rle.encoded_bytes`
#: accounts for.
_RUN_COUNT = struct.Struct(">H")
_RUN = struct.Struct(">HH")

#: Shot/flash record: y_bottom, y_top, x_bottom_left, x_bottom_right as
#: signed 32-bit coordinate counts, top-edge deltas as signed 16-bit,
#: relative dose ×1000, beam-on time [ns].
_SHOT_RECORD = struct.Struct(">iiiihhHI")
SHOT_RECORD_BYTES = _SHOT_RECORD.size


class MachineProgramError(ValueError):
    """Raised when a job cannot be lowered to the requested stream."""


@dataclass(frozen=True)
class MachineSpec:
    """What machine a program is lowered for.

    Args:
        mode: ``"raster"``, ``"vsb"`` or ``"vector"``.
        address_unit: raster address pitch [µm] (ignored by shot modes'
            geometry, which quantize at ``unit``).
        channel_rate: pattern-data channel bandwidth [bytes/s] for the
            :class:`~repro.machine.datapath.ChannelCheck`.
        unit: shot-record coordinate quantum in layout units [µm].
    """

    mode: str
    address_unit: float = 0.5
    channel_rate: float = 5.0e6
    unit: float = 1e-3

    def __post_init__(self) -> None:
        if self.mode not in MACHINE_MODES:
            raise MachineProgramError(
                f"machine mode must be one of {MACHINE_MODES}, "
                f"got {self.mode!r}"
            )
        if self.address_unit <= 0 or self.unit <= 0:
            raise MachineProgramError("address unit and record unit must be positive")
        if self.channel_rate <= 0:
            raise MachineProgramError("channel rate must be positive")

    def machine(self) -> Machine:
        """A writer of this architecture, matched to the spec."""
        if self.mode == "raster":
            return RasterScanWriter(address_unit=self.address_unit)
        if self.mode == "vsb":
            return ShapedBeamWriter()
        return VectorScanWriter()


@dataclass
class MachineProgram:
    """What one export produced: the on-disk program plus its accounting.

    Attributes:
        mode: machine architecture the stream targets.
        path: program file location (``None`` for in-memory exports).
        address_unit: raster address pitch [µm].
        origin: address-grid origin (layout coordinates of address 0,0).
        segment_count: occupied shards lowered into the stream.
        figure_count: shot records (``vsb``/``vector`` modes).
        run_count: RLE runs (``raster`` mode).
        line_count: scanline count words in the stream (``raster`` mode).
        stream_bytes: **exact** machine data-stream size [bytes] — run
            and count words for raster, shot records for vsb/vector.
        estimate_bytes: the legacy per-figure estimate for the same job
            (:func:`~repro.machine.datapath.rle_bytes_estimate` /
            :func:`~repro.machine.datapath.figure_stream_bytes`).
        file_bytes: container size on disk (stream + framing).
        digest: SHA-256 of the container bytes — the determinism oracle.
        breakdown: write-time breakdown on the spec's machine, including
            ``data_limited_extra`` when the channel cannot keep up.
        channel: channel-rate check of the stream against the writer.
        cache_hits / cache_misses: segment-cache accounting.
        cache_write_failures: failed segment-blob stores before the
            export degraded to not storing (the program itself is
            unaffected — cache trouble never fails an export).
        peak_segment_bytes: largest single segment held in memory while
            streaming — the bounded-memory witness.
    """

    mode: str
    path: Optional[Path]
    address_unit: float
    origin: Tuple[float, float]
    base_dose: float
    segment_count: int = 0
    figure_count: int = 0
    run_count: int = 0
    line_count: int = 0
    stream_bytes: int = 0
    estimate_bytes: int = 0
    file_bytes: int = 0
    digest: str = ""
    breakdown: WriteTimeBreakdown = field(default_factory=WriteTimeBreakdown)
    channel: ChannelCheck = field(default_factory=lambda: ChannelCheck(0.0, 1.0))
    cache_hits: int = 0
    cache_misses: int = 0
    cache_write_failures: int = 0
    peak_segment_bytes: int = 0


# ---------------------------------------------------------------------------
# Segment lowering
# ---------------------------------------------------------------------------


def lower_raster_segment(
    shots: Sequence,
    origin: Tuple[float, float],
    address_unit: float,
) -> bytes:
    """Lower one shard's figures to a raster RLE segment payload.

    The address grid is the *global* job grid anchored at ``origin``, so
    segments from different shards concatenate without re-addressing.
    """
    figures = [s.trapezoid for s in shots]
    pattern = encode_figures(figures, address_unit, origin=origin)
    if not pattern.lines:
        return _RASTER_PROLOGUE.pack(0, 0)
    line_first = min(pattern.lines)
    line_last = max(pattern.lines) + 1
    chunks = [_RASTER_PROLOGUE.pack(line_first, line_last - line_first)]
    for j in range(line_first, line_last):
        runs = pattern.lines.get(j, [])
        if len(runs) > 0xFFFF:
            raise MachineProgramError(
                f"scanline {j} has {len(runs)} runs; the 16-bit count "
                "word holds at most 65535"
            )
        chunks.append(_RUN_COUNT.pack(len(runs)))
        for start, length in runs:
            if start > 0xFFFF or length > 0xFFFF:
                raise MachineProgramError(
                    f"run ({start}, {length}) exceeds the 16-bit address "
                    "range; increase the address unit or shard the job"
                )
            chunks.append(_RUN.pack(start, length))
    return b"".join(chunks)


def lower_shot_segment(
    shots: Sequence,
    unit: float,
    ns_per_dose: float,
    ns_per_dose_area: float = 0.0,
) -> bytes:
    """Lower one shard's shots to dose/flash records.

    ``beam_ns = ns_per_dose · dose + ns_per_dose_area · dose · area`` —
    VSB flashes are size-independent (``ns_per_dose``), vector dwells
    scale with area (``ns_per_dose_area``).
    """
    chunks: List[bytes] = []
    for shot in shots:
        t = shot.trapezoid

        def q(v: float) -> int:
            return int(round(v / unit))

        y0, y1 = q(t.y_bottom), q(t.y_top)
        xbl, xbr = q(t.x_bottom_left), q(t.x_bottom_right)
        if not all(-(2**31) <= v <= 2**31 - 1 for v in (y0, y1, xbl, xbr)):
            raise MachineProgramError(
                f"coordinate count out of int32 range at unit {unit:g}; "
                "increase the record unit"
            )
        dtl = q(t.x_top_left) - xbl
        dtr = q(t.x_top_right) - xbr
        if not (-32768 <= dtl <= 32767 and -32768 <= dtr <= 32767):
            raise MachineProgramError(
                f"slant delta out of int16 range: {dtl}, {dtr} counts"
            )
        dose_milli = int(round(shot.dose * 1000.0))
        if not (0 <= dose_milli <= 0xFFFF):
            raise MachineProgramError(
                f"dose {shot.dose} outside the representable range"
            )
        beam_ns = int(
            round(
                ns_per_dose * shot.dose
                + ns_per_dose_area * shot.dose * t.area()
            )
        )
        if not (0 <= beam_ns <= 0xFFFFFFFF):
            raise MachineProgramError(
                f"beam-on time {beam_ns} ns outside the 32-bit range"
            )
        chunks.append(
            _SHOT_RECORD.pack(y0, y1, xbl, xbr, dtl, dtr, dose_milli, beam_ns)
        )
    return b"".join(chunks)


def _segment_counters(mode: str, payload: bytes) -> Tuple[int, int, int]:
    """``(record_count, stream_bytes, line_count)`` of one payload.

    Recomputed by a light parse so cached segments account identically
    to freshly lowered ones.
    """
    if mode != "raster":
        if len(payload) % SHOT_RECORD_BYTES:
            raise JobFileError("shot segment payload not record-aligned")
        records = len(payload) // SHOT_RECORD_BYTES
        return records, records * SHOT_RECORD_BYTES, 0
    if len(payload) < _RASTER_PROLOGUE.size:
        raise JobFileError("truncated raster segment prologue")
    _, line_count = _RASTER_PROLOGUE.unpack_from(payload, 0)
    offset = _RASTER_PROLOGUE.size
    runs = 0
    for _ in range(line_count):
        if len(payload) < offset + _RUN_COUNT.size:
            raise JobFileError("truncated raster segment line header")
        (n,) = _RUN_COUNT.unpack_from(payload, offset)
        offset += _RUN_COUNT.size + n * _RUN.size
        runs += n
    if offset != len(payload):
        raise JobFileError("raster segment payload size mismatch")
    return runs, runs * BYTES_PER_RUN + line_count * BYTES_PER_LINE, line_count


def decode_raster_segment(payload: bytes) -> Tuple[int, List[List[Run]]]:
    """``(first_line, runs_per_line)`` of a raster segment payload."""
    if len(payload) < _RASTER_PROLOGUE.size:
        raise JobFileError("truncated raster segment prologue")
    line_first, line_count = _RASTER_PROLOGUE.unpack_from(payload, 0)
    offset = _RASTER_PROLOGUE.size
    lines: List[List[Run]] = []
    for _ in range(line_count):
        if len(payload) < offset + _RUN_COUNT.size:
            raise JobFileError("truncated raster segment line header")
        (n,) = _RUN_COUNT.unpack_from(payload, offset)
        offset += _RUN_COUNT.size
        if len(payload) < offset + n * _RUN.size:
            raise JobFileError("truncated raster segment runs")
        runs = [_RUN.unpack_from(payload, offset + k * _RUN.size) for k in range(n)]
        offset += n * _RUN.size
        lines.append([(s, length) for s, length in runs])
    if offset != len(payload):
        raise JobFileError("raster segment payload size mismatch")
    return line_first, lines


@dataclass(frozen=True)
class ShotRecord:
    """One decoded shot/flash record (coordinate counts at ``unit``)."""

    y_bottom: int
    y_top: int
    x_bottom_left: int
    x_bottom_right: int
    top_left_delta: int
    top_right_delta: int
    dose_milli: int
    beam_ns: int


def decode_shot_segment(payload: bytes) -> List[ShotRecord]:
    """Parse a vsb/vector segment payload into records."""
    if len(payload) % SHOT_RECORD_BYTES:
        raise JobFileError("shot segment payload not record-aligned")
    return [
        ShotRecord(*_SHOT_RECORD.unpack_from(payload, off))
        for off in range(0, len(payload), SHOT_RECORD_BYTES)
    ]


def raster_coverage_lines(image: ProgramImage) -> Dict[int, List[Run]]:
    """Merge a raster program's segments onto the global scanline grid.

    Shards of the same mosaic row stream their scanlines separately;
    for verification the runs are folded back per global line index
    (runs of different shards are disjoint by the shard contract).
    """
    from repro.machine.rle import _merge_runs

    if image.mode != "raster":
        raise MachineProgramError(f"not a raster program (mode {image.mode!r})")
    lines: Dict[int, List[Run]] = {}
    for seg in image.segments:
        first, seg_lines = decode_raster_segment(seg.payload)
        for k, runs in enumerate(seg_lines):
            if runs:
                lines.setdefault(first + k, []).extend(runs)
    return {j: _merge_runs(runs) for j, runs in lines.items()}


# ---------------------------------------------------------------------------
# Streaming export
# ---------------------------------------------------------------------------


def export_program(
    shard_results: Iterable["ShardResult"],
    job: "MachineJob",
    spec: MachineSpec,
    path: Union[str, Path],
    cache: Optional["ShardCache"] = None,
    segment_count: Optional[int] = None,
) -> MachineProgram:
    """Lower a job's shard results into an on-disk machine program.

    Segments are written in the given (row-major shard plan) order, one
    at a time; with a cache, each segment's content address is consulted
    before lowering and stored after.  The resulting file is
    byte-identical for any worker count and for cold vs warm runs.

    ``shard_results`` may be any iterable; by default it is materialized
    once to count the occupied shards for the header.  Streaming
    callers that already know the occupied count pass ``segment_count``
    and the iterable is consumed strictly one result at a time — the
    out-of-core path, where results arrive off a spill cursor.  The
    emitted bytes are identical either way; a ``segment_count`` that
    does not match the cursor raises before the program is published.
    """
    path = Path(path)
    origin = (job.bounding_box[0], job.bounding_box[1])
    machine = spec.machine()
    if segment_count is None:
        materialized = [result for result in shard_results if result.shots]
        occupied: Iterable["ShardResult"] = materialized
        segment_count = len(materialized)
    else:
        occupied = (result for result in shard_results if result.shots)

    flash_ns = 0.0
    dwell_ns_area = 0.0
    if spec.mode == "vsb":
        flash_ns = machine.flash_time(job.base_dose) * 1e9
    elif spec.mode == "vector":
        dwell_ns_area = machine.dwell_time_per_area(job.base_dose) * 1e9

    program = MachineProgram(
        mode=spec.mode,
        path=path,
        address_unit=spec.address_unit,
        origin=origin,
        base_dose=job.base_dose,
        segment_count=segment_count,
    )
    digest = hashlib.sha256()

    def emit(handle, chunk: bytes) -> None:
        handle.write(chunk)
        digest.update(chunk)
        program.file_bytes += len(chunk)

    # The per-figure size estimate accumulates segment by segment —
    # integer math per figure, so it is exactly what the materialized
    # rle_bytes_estimate / figure_stream_bytes would report.
    estimate_runs = 0
    estimate_figures = 0
    emitted = 0

    # Stream into a staging file and publish atomically, so a lowering
    # error mid-export (or a concurrent reader) never sees a truncated
    # program — and never destroys a previous good one.
    path.parent.mkdir(parents=True, exist_ok=True)
    staging = path.parent / f".{path.name}.tmp-{os.getpid()}-{uuid.uuid4().hex}"
    try:
        with open(staging, "wb") as handle:
            emit(
                handle,
                pack_program_header(
                    spec.mode,
                    spec.address_unit,
                    origin,
                    job.base_dose,
                    segment_count,
                ),
            )
            store_blobs = True
            for result in occupied:
                payload = None
                key = None
                if cache is not None:
                    key = cache.program_key_for(result, spec, origin, job.base_dose)
                    payload = cache.get_blob(key)
                if payload is None:
                    if spec.mode == "raster":
                        payload = lower_raster_segment(
                            result.shots, origin, spec.address_unit
                        )
                    else:
                        payload = lower_shot_segment(
                            result.shots, spec.unit, flash_ns, dwell_ns_area
                        )
                    program.cache_misses += 1
                    if cache is not None and store_blobs:
                        # Contain store faults exactly like the shard
                        # cache: the first failed blob store (ENOSPC,
                        # read-only tree) degrades the rest of this
                        # export to not storing — never to a failed
                        # program.
                        try:
                            stored = cache.put_blob(key, payload)
                        except OSError:
                            stored = False
                        if stored is False:
                            program.cache_write_failures += 1
                            store_blobs = False
                else:
                    program.cache_hits += 1
                if spec.mode == "raster":
                    for shot in result.shots:
                        estimate_runs += max(
                            1,
                            math.ceil(shot.trapezoid.height / spec.address_unit),
                        )
                else:
                    estimate_figures += len(result.shots)
                records, stream_bytes, line_count = _segment_counters(
                    spec.mode, payload
                )
                if spec.mode == "raster":
                    program.run_count += records
                else:
                    program.figure_count += records
                program.line_count += line_count
                program.stream_bytes += stream_bytes
                program.peak_segment_bytes = max(
                    program.peak_segment_bytes, len(payload)
                )
                emit(handle, pack_program_segment(result.index, records, payload))
                emitted += 1
            if emitted != segment_count:
                raise MachineProgramError(
                    f"segment_count promised {segment_count} occupied "
                    f"shards but the cursor produced {emitted}"
                )
        os.replace(staging, path)
    except BaseException:
        try:
            os.unlink(staging)
        except OSError:
            pass
        raise
    if cache is None:
        program.cache_hits = program.cache_misses = 0
    program.digest = digest.hexdigest()

    x0, y0, x1, y1 = job.bounding_box
    if spec.mode == "raster":
        lines = math.ceil(max(y1 - y0, spec.address_unit) / spec.address_unit)
        program.estimate_bytes = estimate_runs * 4 + lines * 2
    else:
        program.estimate_bytes = estimate_figures * SHOT_RECORD_BYTES

    breakdown = machine.write_time(job)
    program.channel = _channel_check(spec, machine, job, program, breakdown)
    if program.channel.limited:
        # The beam stalls while the channel catches up: exposure
        # stretches by the slowdown factor.
        breakdown.data_limited_extra = breakdown.exposure * (
            program.channel.slowdown - 1.0
        )
    program.breakdown = breakdown
    return program


def _channel_check(
    spec: MachineSpec,
    machine: Machine,
    job: "MachineJob",
    program: MachineProgram,
    breakdown: WriteTimeBreakdown,
) -> ChannelCheck:
    """Stream-size-aware channel check for the lowered program."""
    if spec.mode == "raster":
        if breakdown.exposure <= 0 or program.stream_bytes == 0:
            return ChannelCheck(0.0, spec.channel_rate)
        return raster_channel_check(
            machine.effective_pixel_rate(job.base_dose),
            program.stream_bytes,
            breakdown.exposure,
            channel_rate=spec.channel_rate,
        )
    busy = breakdown.exposure + breakdown.figure_overhead
    if busy <= 0 or program.figure_count == 0:
        return ChannelCheck(0.0, spec.channel_rate)
    return vector_channel_check(
        program.figure_count / busy,
        channel_rate=spec.channel_rate,
        bytes_per_figure=SHOT_RECORD_BYTES,
    )

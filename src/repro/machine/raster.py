"""Raster-scan pattern generator (EBES/MEBES class).

The raster architecture scans *every* address in the chip at a fixed pixel
rate while the stage moves continuously; the beam is simply blanked over
unexposed addresses.  Its signature property — the headline of the T1
comparison — is that writing time is **independent of pattern density**::

    T ≈ N_addresses / f_pixel + stripe turnarounds

The achievable pixel rate is limited by two couplings modelled here:

* *Current*: each address receives ``I / f`` coulombs, so delivering dose
  D at address size a needs ``I = D · f · a²``.  The column cannot focus
  arbitrary current into a spot of size a, capping f.
* *Data*: the blanker needs one bit per address; run-length-encoded
  figure data must sustain that rate (see :mod:`repro.machine.datapath`).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.machine.base import Machine, WriteTimeBreakdown
from repro.machine.column import Column, LAB6
from repro.machine.stage import Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.job import MachineJob


class RasterScanWriter(Machine):
    """An EBES-class raster-scan writer.

    Args:
        address_unit: address (pixel) size [µm].
        pixel_rate: nominal blanking rate [addresses/s].
        stripe_addresses: minor-scan span in addresses (stripe height).
        column: electron-optical column (for the current limit).
        stage: continuously moving stage.
        calibration_time: per-chip setup/registration time [s].
    """

    name = "raster"

    def __init__(
        self,
        address_unit: float = 0.5,
        pixel_rate: float = 2.0e7,
        stripe_addresses: int = 1024,
        column: Optional[Column] = None,
        stage: Optional[Stage] = None,
        calibration_time: float = 10.0,
    ) -> None:
        if address_unit <= 0 or pixel_rate <= 0:
            raise ValueError("address unit and pixel rate must be positive")
        if stripe_addresses < 1:
            raise ValueError("stripe must be at least one address")
        self.address_unit = address_unit
        self.pixel_rate = pixel_rate
        self.stripe_addresses = stripe_addresses
        self.column = column if column is not None else Column(LAB6)
        self.stage = stage if stage is not None else Stage(continuous=True)
        self.calibration_time = calibration_time

    # -- beam/dose coupling -------------------------------------------------

    def beam_current(self) -> float:
        """Largest current the column focuses into one address [A]."""
        return self.column.max_current_for_spot(self.address_unit)

    def required_current(self, dose_uc_per_cm2: float, rate: float) -> float:
        """Current needed to deliver ``dose`` at ``rate`` [A]."""
        dose_c_per_um2 = dose_uc_per_cm2 * 1e-6 / 1e8
        return dose_c_per_um2 * rate * self.address_unit**2

    def effective_pixel_rate(self, dose_uc_per_cm2: float) -> float:
        """Pixel rate after the current limit is applied [addresses/s].

        The machine runs at its nominal rate unless the dose demands more
        current than the column can focus, in which case the rate drops
        proportionally — the resist-sensitivity ceiling of experiment F5.
        """
        available = self.beam_current()
        needed = self.required_current(dose_uc_per_cm2, self.pixel_rate)
        if needed <= available:
            return self.pixel_rate
        return self.pixel_rate * available / needed

    # -- write time -----------------------------------------------------------

    def write_time(self, job: "MachineJob") -> WriteTimeBreakdown:
        """Raster write time: all addresses scanned, density-independent."""
        x0, y0, x1, y1 = job.bounding_box
        width = max(x1 - x0, self.address_unit)
        height = max(y1 - y0, self.address_unit)
        cols = math.ceil(width / self.address_unit)
        rows = math.ceil(height / self.address_unit)
        addresses = cols * rows

        rate = self.effective_pixel_rate(job.base_dose)
        exposure = addresses / rate

        stripe_height = self.stripe_addresses * self.address_unit
        stripes = math.ceil(height / stripe_height)
        # Continuous stage: one pass per stripe plus a constant-velocity
        # retrace; modelled as one stripe-length move per stripe.
        stage_time = stripes * self.stage.move_time(width) * 0.05

        return WriteTimeBreakdown(
            exposure=exposure,
            figure_overhead=0.0,
            stage=stage_time,
            calibration=self.calibration_time,
        )

    def __repr__(self) -> str:
        return (
            f"RasterScanWriter(a={self.address_unit:g} µm, "
            f"rate={self.pixel_rate:g}/s, stripe={self.stripe_addresses})"
        )

"""Deflection-field distortion and polynomial calibration.

Beam deflection is not perfectly linear: gain and rotation errors, and
pincushion-type third-order distortion, displace the landing position by
tens to hundreds of nanometres at the field edge.  Machines measure the
distortion on a fiducial grid and correct it with a polynomial map; what
remains — the calibration *residual* — is a dominant term in the
field-stitching error budget (experiment F4).

The model here generates a physically shaped distortion field, fits the
correction polynomial exactly as a machine's calibration routine would
(least squares on an N×N mark grid), and reports the residual.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a deflection calibration.

    Attributes:
        order: polynomial order of the correction map.
        marks: fiducial marks per axis used for the fit.
        residual_rms: RMS residual displacement over the field [µm].
        residual_max: maximum residual displacement [µm].
        edge_residual_rms: RMS residual along the field boundary [µm] —
            the part that becomes butting error.
    """

    order: int
    marks: int
    residual_rms: float
    residual_max: float
    edge_residual_rms: float


class DeflectionField:
    """A square deflection field with systematic distortion.

    The distortion is a superposition of gain error, rotation, and
    third/fifth-order pincushion terms, each expressed at the field edge:

    Args:
        size: field size [µm] (full width; deflection spans ±size/2).
        gain_error: fractional gain error (e.g. 1e-4).
        rotation_urad: deflection-axis rotation [µrad].
        pincushion: third-order distortion displacement at the field
            corner, as a fraction of the half-field (e.g. 1e-4).
        fifth_order: fifth-order term at the corner, same convention.
    """

    def __init__(
        self,
        size: float = 2000.0,
        gain_error: float = 1e-4,
        rotation_urad: float = 50.0,
        pincushion: float = 2e-4,
        fifth_order: float = 5e-5,
    ) -> None:
        if size <= 0:
            raise ValueError("field size must be positive")
        self.size = size
        self.gain_error = gain_error
        self.rotation = rotation_urad * 1e-6
        self.pincushion = pincushion
        self.fifth_order = fifth_order

    # -- distortion model ---------------------------------------------------

    def distortion(
        self, x: np.ndarray, y: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Displacement (dx, dy) [µm] at field coordinates (x, y).

        Coordinates are measured from the field centre, each in
        ``[-size/2, +size/2]``.
        """
        half = self.size / 2.0
        xn = np.asarray(x) / half
        yn = np.asarray(y) / half
        r2 = xn**2 + yn**2
        # Gain and rotation (first order).
        dx = self.gain_error * np.asarray(x) - self.rotation * np.asarray(y)
        dy = self.gain_error * np.asarray(y) + self.rotation * np.asarray(x)
        # Pincushion: radial displacement growing as r³.
        scale3 = self.pincushion * half / 2.0  # corner (r²=2) displacement
        dx = dx + scale3 * r2 * xn
        dy = dy + scale3 * r2 * yn
        # Fifth order.
        scale5 = self.fifth_order * half / 4.0
        dx = dx + scale5 * r2**2 * xn
        dy = dy + scale5 * r2**2 * yn
        return dx, dy

    # -- calibration ---------------------------------------------------------

    def calibrate(
        self, order: int = 3, marks: int = 9, noise: float = 0.0, seed: int = 0
    ) -> CalibrationResult:
        """Fit a 2-D polynomial correction and report the residual.

        Args:
            order: total polynomial order of the correction map.
            marks: fiducial marks per axis (marks² measurement points).
            noise: 1σ mark-detection noise [µm] added to measurements.
            seed: RNG seed for the noise.
        """
        if order < 0:
            raise ValueError("order must be non-negative")
        if marks < order + 1:
            raise ValueError("need at least order+1 marks per axis")
        half = self.size / 2.0
        axis = np.linspace(-half, half, marks)
        gx, gy = np.meshgrid(axis, axis)
        mx = gx.ravel()
        my = gy.ravel()
        dx, dy = self.distortion(mx, my)
        if noise > 0:
            rng = np.random.default_rng(seed)
            dx = dx + rng.normal(0.0, noise, dx.shape)
            dy = dy + rng.normal(0.0, noise, dy.shape)

        basis = _poly_basis(mx / half, my / half, order)
        coeff_x, *_ = np.linalg.lstsq(basis, dx, rcond=None)
        coeff_y, *_ = np.linalg.lstsq(basis, dy, rcond=None)

        # Evaluate the residual on a dense grid.
        dense_axis = np.linspace(-half, half, 41)
        ex, ey = np.meshgrid(dense_axis, dense_axis)
        ex = ex.ravel()
        ey = ey.ravel()
        true_dx, true_dy = self.distortion(ex, ey)
        dense_basis = _poly_basis(ex / half, ey / half, order)
        res_x = true_dx - dense_basis @ coeff_x
        res_y = true_dy - dense_basis @ coeff_y
        magnitude = np.hypot(res_x, res_y)

        edge = (np.abs(ex) > half * 0.97) | (np.abs(ey) > half * 0.97)
        return CalibrationResult(
            order=order,
            marks=marks,
            residual_rms=float(np.sqrt(np.mean(magnitude**2))),
            residual_max=float(magnitude.max()),
            edge_residual_rms=float(np.sqrt(np.mean(magnitude[edge] ** 2))),
        )


def _poly_basis(xn: np.ndarray, yn: np.ndarray, order: int) -> np.ndarray:
    """2-D polynomial design matrix with all terms of total degree ≤ order."""
    columns = []
    for total in range(order + 1):
        for ix in range(total + 1):
            iy = total - ix
            columns.append(xn**ix * yn**iy)
    return np.stack(columns, axis=1)

"""Variable-shaped-beam (VSB) pattern generator.

A shaped-beam machine images a variable rectangular aperture onto the
target, exposing an entire figure (up to the maximum shot size) in one
flash.  Throughput is set by the *shot count* rather than the pixel count,
which is why fracture quality (experiment T2) directly buys writing time.
The flash length is dose/current-density; between flashes the shaping
deflectors must settle.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.machine.base import Machine, WriteTimeBreakdown
from repro.machine.stage import Stage

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.job import MachineJob


class ShapedBeamWriter(Machine):
    """A variable-shaped-beam writer.

    Args:
        max_shot: maximum shot edge [µm] (must match the fracturer's).
        current_density: aperture-image current density [A/cm²].
        shot_settle: shaping/deflection settling per shot [s].
        stage: stop-and-go stage.
        field_size: deflection field size [µm].
        field_calibration: registration time per field [s].
    """

    name = "shaped-beam"

    def __init__(
        self,
        max_shot: float = 2.0,
        current_density: float = 20.0,
        shot_settle: float = 1.0e-6,
        stage: Optional[Stage] = None,
        field_size: float = 2000.0,
        field_calibration: float = 0.2,
    ) -> None:
        if max_shot <= 0 or current_density <= 0:
            raise ValueError("shot size and current density must be positive")
        self.max_shot = max_shot
        self.current_density = current_density
        self.shot_settle = shot_settle
        self.stage = stage if stage is not None else Stage()
        self.field_size = field_size
        self.field_calibration = field_calibration

    def beam_current(self) -> float:
        """Current through a full-size shot [A]."""
        area_cm2 = (self.max_shot**2) / 1e8
        return self.current_density * area_cm2

    def flash_time(self, dose_uc_per_cm2: float) -> float:
        """Flash duration for one shot at ``dose`` [s] (size-independent:
        both charge and current scale with shot area)."""
        return dose_uc_per_cm2 * 1e-6 / self.current_density

    def write_time(self, job: "MachineJob") -> WriteTimeBreakdown:
        """VSB write time: shot flashes plus per-shot settling."""
        flash = self.flash_time(job.base_dose)
        # Dose-corrected shots flash proportionally longer.
        total_flash = flash * job.dose_weighted_count()
        overhead = job.figure_count() * self.shot_settle

        x0, y0, x1, y1 = job.bounding_box
        cols = max(1, math.ceil((x1 - x0) / self.field_size))
        rows = max(1, math.ceil((y1 - y0) / self.field_size))
        stage_time = self.stage.serpentine_time(self.field_size, cols, rows)
        calibration = cols * rows * self.field_calibration

        return WriteTimeBreakdown(
            exposure=total_flash,
            figure_overhead=overhead,
            stage=stage_time,
            calibration=calibration,
        )

    def __repr__(self) -> str:
        return (
            f"ShapedBeamWriter(max_shot={self.max_shot:g} µm, "
            f"J={self.current_density:g} A/cm²)"
        )

"""Field-stitching (butting) error model.

Patterns larger than one deflection field are written as a mosaic; a
feature crossing a field boundary is placed by *two* fields, and the
mismatch between them — deflection-calibration residual at the two field
edges plus two independent stage placements — appears as a butting error.
Experiment F4 sweeps calibration order and stage noise and reports the
resulting error distribution, reproducing the overlay-budget analysis of
the period literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.machine.deflection import DeflectionField
from repro.machine.stage import Stage


@dataclass
class ButtingReport:
    """Distribution of butting errors over a field mosaic.

    Attributes:
        samples: number of boundary sample points measured.
        rms: RMS butting error [µm].
        maximum: worst butting error [µm].
        mean: mean butting error magnitude [µm].
        stage_contribution_rms: RMS of the stage-only component [µm].
        deflection_contribution_rms: RMS of the deflection-only
            component [µm].
    """

    samples: int
    rms: float
    maximum: float
    mean: float
    stage_contribution_rms: float
    deflection_contribution_rms: float


class StitchingModel:
    """Monte-Carlo butting-error model for a field mosaic.

    Args:
        field: the (distorted) deflection field.
        stage: stage whose ``position_noise`` displaces whole fields.
        calibration_order: polynomial order of the deflection correction
            (None = uncorrected raw distortion).
        calibration_marks: fiducial marks per axis for the calibration.
    """

    def __init__(
        self,
        field: Optional[DeflectionField] = None,
        stage: Optional[Stage] = None,
        calibration_order: Optional[int] = 3,
        calibration_marks: int = 9,
    ) -> None:
        self.field = field if field is not None else DeflectionField()
        self.stage = stage if stage is not None else Stage()
        self.calibration_order = calibration_order
        self.calibration_marks = calibration_marks

    def _edge_residuals(
        self,
        n_points: int,
        edge: str = "right",
        fit: Optional[Tuple[np.ndarray, np.ndarray]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Residual (dx, dy) along one field edge after calibration.

        ``edge="right"`` samples the right edge (x = +size/2, y swept) —
        the edge meeting a *vertical* mosaic boundary; ``edge="top"``
        samples the top edge (y = +size/2, x swept) — the edge meeting a
        *horizontal* boundary.  The two are not interchangeable for any
        distortion that is not exchange-symmetric in x and y.

        ``fit`` passes pre-computed calibration coefficients (the fit is
        edge-independent, so one fit serves both orientations); without
        it the fit is computed fresh from the current model state.
        """
        half = self.field.size / 2.0
        sweep = np.linspace(-half, half, n_points)
        if edge == "right":
            xs, ys = np.full_like(sweep, half), sweep
        elif edge == "top":
            xs, ys = sweep, np.full_like(sweep, half)
        else:
            raise ValueError(f"edge must be 'right' or 'top', got {edge!r}")
        dx, dy = self.field.distortion(xs, ys)
        if self.calibration_order is None:
            return dx, dy
        # Subtract the correction polynomial's prediction along the edge.
        from repro.machine.deflection import _poly_basis

        coeff_x, coeff_y = fit if fit is not None else self._calibration_coefficients()
        edge_basis = _poly_basis(xs / half, ys / half, self.calibration_order)
        return dx - edge_basis @ coeff_x, dy - edge_basis @ coeff_y

    def _calibration_coefficients(self) -> Tuple[np.ndarray, np.ndarray]:
        """Correction-polynomial coefficients fitted on the mark grid.

        The fit depends only on the field, the order and the mark count
        — not on which edge is sampled.  Computed fresh on every call so
        mutating the model's public attributes between calls never
        yields a stale fit; callers that need both edges pass the result
        to :meth:`_edge_residuals` once per orientation.
        """
        from repro.machine.deflection import _poly_basis

        half = self.field.size / 2.0
        axis = np.linspace(-half, half, self.calibration_marks)
        gx, gy = np.meshgrid(axis, axis)
        mx, my = gx.ravel(), gy.ravel()
        mdx, mdy = self.field.distortion(mx, my)
        basis = _poly_basis(mx / half, my / half, self.calibration_order)
        coeff_x, *_ = np.linalg.lstsq(basis, mdx, rcond=None)
        coeff_y, *_ = np.linalg.lstsq(basis, mdy, rcond=None)
        return coeff_x, coeff_y

    def simulate(
        self,
        columns: int = 4,
        rows: int = 4,
        samples_per_edge: int = 21,
        seed: int = 0,
        passes: int = 1,
    ) -> ButtingReport:
        """Simulate butting errors across a ``columns × rows`` mosaic.

        For every interior vertical boundary, the left field's right edge
        and the right field's left edge place the same feature; their
        disagreement is the deflection residual difference (left-edge
        residuals mirror the right-edge ones by field symmetry) plus the
        difference of two independent stage placement errors.  Horizontal
        boundaries pair the lower field's *top* edge with the upper
        field's bottom edge the same way — their residuals are sampled on
        the top edge, not recycled from the vertical-boundary edge.

        Args:
            passes: multipass writing — the pattern is written ``passes``
                times at 1/passes dose each, with independent stage
                placements that average out.  EBES used this to reduce
                butting visibility by ~1/√passes; the systematic
                deflection residual does *not* average.
        """
        if columns < 2 and rows < 2:
            raise ValueError("mosaic needs at least two fields along one axis")
        if passes < 1:
            raise ValueError("passes must be at least 1")
        rng = np.random.default_rng(seed)
        n_boundaries_v = max(0, (columns - 1) * rows)
        n_boundaries_h = max(0, (rows - 1) * columns)

        # The deflection mismatch along a boundary is systematic — it
        # does not depend on the Monte-Carlo draw — so it is computed
        # once per boundary orientation, outside the sampling loop, and
        # only for orientations the mosaic actually has.
        # Vertical boundary: right edge of A vs left edge of B; the
        # opposing edge's residuals are the point-mirror of the sampled
        # ones (residual(-p) = -residual(p) for the odd distortion
        # terms), i.e. ``-res[::-1]`` over the symmetric sweep.
        fit = (
            self._calibration_coefficients()
            if self.calibration_order is not None
            else None
        )
        ddx_v = ddy_v = ddx_h = ddy_h = None
        if n_boundaries_v:
            res_dx, res_dy = self._edge_residuals(samples_per_edge, "right", fit)
            ddx_v = res_dx - (-res_dx[::-1])
            ddy_v = res_dy - (-res_dy[::-1])
        # Horizontal boundary: top edge of A vs bottom edge of B,
        # mirrored the same way along the x sweep.
        if n_boundaries_h:
            res_dx, res_dy = self._edge_residuals(samples_per_edge, "top", fit)
            ddx_h = res_dx - (-res_dx[::-1])
            ddy_h = res_dy - (-res_dy[::-1])

        stage_only: List[float] = []
        deflection_only: List[float] = []
        combined: List[float] = []
        for boundary in range(n_boundaries_v + n_boundaries_h):
            # Average the random stage placement over the passes; the
            # deflection residual is systematic and survives averaging.
            stage_a = rng.normal(
                0.0, self.stage.position_noise, (passes, 2)
            ).mean(axis=0)
            stage_b = rng.normal(
                0.0, self.stage.position_noise, (passes, 2)
            ).mean(axis=0)
            stage_delta = stage_a - stage_b
            if boundary < n_boundaries_v:
                ddx, ddy = ddx_v, ddy_v
            else:
                ddx, ddy = ddx_h, ddy_h
            total = np.hypot(ddx + stage_delta[0], ddy + stage_delta[1])
            combined.extend(total.tolist())
            deflection_only.extend(np.hypot(ddx, ddy).tolist())
            stage_only.append(float(np.hypot(*stage_delta)))

        combined_arr = np.array(combined)
        return ButtingReport(
            samples=len(combined),
            rms=float(np.sqrt(np.mean(combined_arr**2))),
            maximum=float(combined_arr.max()),
            mean=float(np.abs(combined_arr).mean()),
            stage_contribution_rms=float(
                np.sqrt(np.mean(np.array(stage_only) ** 2))
            ),
            deflection_contribution_rms=float(
                np.sqrt(np.mean(np.array(deflection_only) ** 2))
            ),
        )


def overlay_budget(
    contributions_um: dict,
) -> Tuple[float, dict]:
    """Root-sum-square overlay budget from named 1σ contributions.

    Returns:
        ``(total_rss, fractional_share)`` where the share maps each name
        to its fraction of the total variance.
    """
    total_var = sum(v * v for v in contributions_um.values())
    total = total_var**0.5
    share = {
        k: (v * v / total_var if total_var > 0 else 0.0)
        for k, v in contributions_um.items()
    }
    return total, share

"""Pattern datapath: record sizes, data volumes and rate ceilings.

The 1979 tutorial's data-preparation argument is quantitative: a flat
machine format explodes relative to the hierarchical source, and the
channel feeding the blanker can become the throughput limit.  This module
accounts for both (experiments T3 and F5).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.geometry.trapezoid import Trapezoid


#: Bytes per fractured figure record: 4 coordinates + height + dose,
#: 16-bit each, matching compact machine formats of the era.
BYTES_PER_FIGURE = 12

#: Bytes per rectangle record in a rectangles-only format.
BYTES_PER_RECTANGLE = 8


@dataclass(frozen=True)
class DataVolumeReport:
    """Pattern-data volume accounting for one job.

    Attributes:
        figure_count: machine figures in the flat stream.
        figure_bytes: flat figure-stream size [bytes].
        source_bytes: hierarchical source file size [bytes] (e.g. GDSII).
        expansion_ratio: figure_bytes / source_bytes.
        bitmap_bytes: full bitmap size at the address unit [bytes]
            (1 bit per address) — the naive upper bound.
        rle_bytes: run-length-encoded bitmap estimate [bytes].
    """

    figure_count: int
    figure_bytes: int
    source_bytes: int
    expansion_ratio: float
    bitmap_bytes: int
    rle_bytes: int


def figure_stream_bytes(
    figures: Sequence[Trapezoid], bytes_per_figure: int = BYTES_PER_FIGURE
) -> int:
    """Size of the flat machine figure stream [bytes]."""
    return len(figures) * bytes_per_figure


def bitmap_bytes(width: float, height: float, address_unit: float) -> int:
    """Size of a 1-bit-per-address bitmap of the chip [bytes]."""
    if address_unit <= 0:
        raise ValueError("address unit must be positive")
    cols = math.ceil(width / address_unit)
    rows = math.ceil(height / address_unit)
    return (cols * rows + 7) // 8


def rle_bytes_estimate(
    figures: Sequence[Trapezoid], height: float, address_unit: float
) -> int:
    """Run-length-encoded bitmap size estimate [bytes].

    Each scan line crossing a figure produces one (start, length) run of
    two 16-bit words; empty scan lines cost one flag word.  This is the
    encoding EBES-class machines streamed to the blanker.
    """
    if address_unit <= 0:
        raise ValueError("address unit must be positive")
    runs = 0
    for figure in figures:
        runs += max(1, math.ceil(figure.height / address_unit))
    lines = math.ceil(height / address_unit)
    return runs * 4 + lines * 2


def data_volume_report(
    figures: Sequence[Trapezoid],
    source_bytes: int,
    width: float,
    height: float,
    address_unit: float,
) -> DataVolumeReport:
    """Full data-volume accounting for one fractured job."""
    fig_bytes = figure_stream_bytes(figures)
    return DataVolumeReport(
        figure_count=len(figures),
        figure_bytes=fig_bytes,
        source_bytes=source_bytes,
        expansion_ratio=fig_bytes / source_bytes if source_bytes else float("inf"),
        bitmap_bytes=bitmap_bytes(width, height, address_unit),
        rle_bytes=rle_bytes_estimate(figures, height, address_unit),
    )


@dataclass(frozen=True)
class ChannelCheck:
    """Whether a data channel can sustain a writer's figure/pixel rate.

    Attributes:
        required_rate: bytes/s the writer consumes at full speed.
        channel_rate: bytes/s the channel provides.
        limited: True when the channel is the bottleneck.
        slowdown: factor by which writing stretches when limited (≥ 1).
    """

    required_rate: float
    channel_rate: float

    @property
    def limited(self) -> bool:
        return self.required_rate > self.channel_rate

    @property
    def slowdown(self) -> float:
        if self.channel_rate <= 0:
            return float("inf")
        return max(1.0, self.required_rate / self.channel_rate)


def raster_channel_check(
    pixel_rate: float, rle_bytes_total: int, write_time: float,
    channel_rate: float = 5.0e6,
) -> ChannelCheck:
    """Check an RLE stream against a raster writer's consumption.

    Args:
        pixel_rate: addresses/s being scanned.
        rle_bytes_total: total encoded pattern size.
        write_time: seconds over which the stream must be delivered.
        channel_rate: channel bandwidth [bytes/s] (5 MB/s ≈ a fast 1979
            disk channel).
    """
    if write_time <= 0:
        raise ValueError("write time must be positive")
    required = rle_bytes_total / write_time
    return ChannelCheck(required_rate=required, channel_rate=channel_rate)


def vector_channel_check(
    figures_per_second: float,
    channel_rate: float = 5.0e6,
    bytes_per_figure: int = BYTES_PER_FIGURE,
) -> ChannelCheck:
    """Check a figure stream against a vector/VSB writer's shot rate."""
    required = figures_per_second * bytes_per_figure
    return ChannelCheck(required_rate=required, channel_rate=channel_rate)

"""repro — an electron-beam lithography CAD and machine-model toolchain.

A from-scratch Python reproduction of the pattern-data-preparation stack
described by the DAC 1979 tutorial "Electron beam lithography": geometry
booleans, fracturing, proximity-effect correction, exposure physics, and
analytic models of raster-scan, vector-scan and variable-shaped-beam
pattern generators.

Quickstart::

    from repro import (
        PreparationPipeline, RasterScanWriter, VectorScanWriter,
    )
    from repro.layout import generators

    pipe = PreparationPipeline(
        machines=[RasterScanWriter(), VectorScanWriter()]
    )
    result = pipe.run(generators.grating())
    print(result.job, result.write_times["raster"].total)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
reconstructed evaluation.
"""

from repro.geometry import Point, Polygon, Region, Transform, Trapezoid
from repro.layout import Cell, CellArray, CellReference, Layer, Library
from repro.fracture import (
    RectangleFracturer,
    Shot,
    ShotFracturer,
    TrapezoidFracturer,
)
from repro.physics import (
    DoubleGaussianPSF,
    ExposureSimulator,
    MonteCarloSimulator,
    Resist,
    psf_for,
)
from repro.machine import (
    Column,
    DeflectionField,
    RasterScanWriter,
    ShapedBeamWriter,
    Stage,
    StitchingModel,
    VectorScanWriter,
)
from repro.pec import (
    GhostCorrector,
    IterativeDoseCorrector,
    MatrixDoseCorrector,
    ShapeBiasCorrector,
)
from repro.core import (
    FidelityReport,
    MachineJob,
    PipelineResult,
    PreparationPipeline,
    compare_machines,
    fidelity_report,
)
from repro.analysis import ThroughputModel

__version__ = "1.0.0"

__all__ = [
    "Point",
    "Polygon",
    "Region",
    "Transform",
    "Trapezoid",
    "Cell",
    "CellArray",
    "CellReference",
    "Layer",
    "Library",
    "Shot",
    "TrapezoidFracturer",
    "RectangleFracturer",
    "ShotFracturer",
    "DoubleGaussianPSF",
    "psf_for",
    "ExposureSimulator",
    "MonteCarloSimulator",
    "Resist",
    "Column",
    "Stage",
    "DeflectionField",
    "StitchingModel",
    "RasterScanWriter",
    "VectorScanWriter",
    "ShapedBeamWriter",
    "IterativeDoseCorrector",
    "MatrixDoseCorrector",
    "ShapeBiasCorrector",
    "GhostCorrector",
    "MachineJob",
    "PreparationPipeline",
    "PipelineResult",
    "FidelityReport",
    "fidelity_report",
    "compare_machines",
    "ThroughputModel",
    "__version__",
]

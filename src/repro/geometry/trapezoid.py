"""Horizontal trapezoid — the native machine primitive.

Electron-beam pattern generators of the EBES/MEBES class consume figures that
are trapezoids with horizontal top and bottom edges (rectangles and triangles
being the degenerate cases).  The scanline boolean engine emits exactly this
shape, so the fracturing step is largely a by-product of the geometry
processing — the observation at the heart of 1970s e-beam data preparation.
"""

from __future__ import annotations

from typing import Tuple

from repro.geometry.point import Point
from repro.geometry.polygon import Polygon


class Trapezoid:
    """A trapezoid with horizontal parallel sides.

    Attributes:
        y_bottom: y of the lower horizontal edge.
        y_top: y of the upper horizontal edge (``> y_bottom``).
        x_bottom_left / x_bottom_right: x-extent along the lower edge.
        x_top_left / x_top_right: x-extent along the upper edge.

    Either horizontal edge may have zero length, giving a triangle.
    """

    __slots__ = (
        "y_bottom",
        "y_top",
        "x_bottom_left",
        "x_bottom_right",
        "x_top_left",
        "x_top_right",
    )

    def __init__(
        self,
        y_bottom: float,
        y_top: float,
        x_bottom_left: float,
        x_bottom_right: float,
        x_top_left: float,
        x_top_right: float,
    ) -> None:
        if y_top <= y_bottom:
            raise ValueError("y_top must exceed y_bottom")
        if x_bottom_right < x_bottom_left or x_top_right < x_top_left:
            raise ValueError("right x must not be left of left x")
        self.y_bottom = float(y_bottom)
        self.y_top = float(y_top)
        self.x_bottom_left = float(x_bottom_left)
        self.x_bottom_right = float(x_bottom_right)
        self.x_top_left = float(x_top_left)
        self.x_top_right = float(x_top_right)

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rectangle(
        cls, x0: float, y0: float, x1: float, y1: float
    ) -> "Trapezoid":
        """Axis-aligned rectangle as a trapezoid."""
        xa, xb = sorted((x0, x1))
        ya, yb = sorted((y0, y1))
        return cls(ya, yb, xa, xb, xa, xb)

    # -- measures ---------------------------------------------------------

    @property
    def height(self) -> float:
        """Vertical extent."""
        return self.y_top - self.y_bottom

    def area(self) -> float:
        """Exact trapezoid area."""
        bottom = self.x_bottom_right - self.x_bottom_left
        top = self.x_top_right - self.x_top_left
        return 0.5 * (bottom + top) * self.height

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)``."""
        return (
            min(self.x_bottom_left, self.x_top_left),
            self.y_bottom,
            max(self.x_bottom_right, self.x_top_right),
            self.y_top,
        )

    def centroid(self) -> Point:
        """Area centroid of the trapezoid."""
        return self.to_polygon().centroid()

    def is_rectangle(self, tol: float = 0.0) -> bool:
        """True if both slanted sides are vertical within ``tol``."""
        return (
            abs(self.x_bottom_left - self.x_top_left) <= tol
            and abs(self.x_bottom_right - self.x_top_right) <= tol
        )

    def is_degenerate(self, tol: float = 0.0) -> bool:
        """True if the trapezoid has (near-)zero area."""
        return self.area() <= tol

    def width_at(self, y: float) -> float:
        """Horizontal width at height ``y`` (linear interpolation)."""
        if not (self.y_bottom <= y <= self.y_top):
            return 0.0
        t = (y - self.y_bottom) / self.height
        left = self.x_bottom_left + t * (self.x_top_left - self.x_bottom_left)
        right = self.x_bottom_right + t * (self.x_top_right - self.x_bottom_right)
        return right - left

    def min_width(self) -> float:
        """Smaller of the two parallel-edge widths (sliver detector)."""
        return min(
            self.x_bottom_right - self.x_bottom_left,
            self.x_top_right - self.x_top_left,
        )

    # -- conversions --------------------------------------------------------

    def to_polygon(self) -> Polygon:
        """Counter-clockwise polygon; collapses zero-length edges."""
        pts = [
            (self.x_bottom_left, self.y_bottom),
            (self.x_bottom_right, self.y_bottom),
            (self.x_top_right, self.y_top),
            (self.x_top_left, self.y_top),
        ]
        unique = []
        for p in pts:
            if not unique or p != unique[-1]:
                unique.append(p)
        return Polygon(unique)

    def translated(self, dx: float, dy: float) -> "Trapezoid":
        """Copy shifted by ``(dx, dy)``."""
        return Trapezoid(
            self.y_bottom + dy,
            self.y_top + dy,
            self.x_bottom_left + dx,
            self.x_bottom_right + dx,
            self.x_top_left + dx,
            self.x_top_right + dx,
        )

    def split_at_y(self, y: float) -> Tuple["Trapezoid", "Trapezoid"]:
        """Cut into lower and upper trapezoids at interior height ``y``."""
        if not (self.y_bottom < y < self.y_top):
            raise ValueError("split height must be strictly inside")
        t = (y - self.y_bottom) / self.height
        xl = self.x_bottom_left + t * (self.x_top_left - self.x_bottom_left)
        xr = self.x_bottom_right + t * (self.x_top_right - self.x_bottom_right)
        lower = Trapezoid(
            self.y_bottom, y, self.x_bottom_left, self.x_bottom_right, xl, xr
        )
        upper = Trapezoid(y, self.y_top, xl, xr, self.x_top_left, self.x_top_right)
        return lower, upper

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trapezoid):
            return NotImplemented
        return (
            self.y_bottom == other.y_bottom
            and self.y_top == other.y_top
            and self.x_bottom_left == other.x_bottom_left
            and self.x_bottom_right == other.x_bottom_right
            and self.x_top_left == other.x_top_left
            and self.x_top_right == other.x_top_right
        )

    def __hash__(self) -> int:
        return hash(
            (
                self.y_bottom,
                self.y_top,
                self.x_bottom_left,
                self.x_bottom_right,
                self.x_top_left,
                self.x_top_right,
            )
        )

    def __repr__(self) -> str:
        return (
            f"Trapezoid(y=[{self.y_bottom:g},{self.y_top:g}], "
            f"bottom=[{self.x_bottom_left:g},{self.x_bottom_right:g}], "
            f"top=[{self.x_top_left:g},{self.x_top_right:g}])"
        )

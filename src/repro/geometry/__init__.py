"""Geometry kernel for electron-beam pattern data.

This package is a from-scratch 2-D polygon geometry engine sized for
lithography CAD work:

* :class:`~repro.geometry.point.Point` — immutable 2-D vector.
* :class:`~repro.geometry.transform.Transform` — affine transforms
  (translation, rotation, scaling, mirroring) in the GDSII convention.
* :class:`~repro.geometry.polygon.Polygon` — simple polygon with the usual
  predicates (area, orientation, containment, convexity) and operations
  (clipping against a half-plane or box, simplification).
* :mod:`~repro.geometry.boolean` — scanline boolean engine over polygon sets
  (union / intersection / difference / XOR with nonzero or even-odd fill).
* :class:`~repro.geometry.trapezoid.Trapezoid` — the machine primitive
  emitted by the scanline engine and consumed by the fracturers.
* :class:`~repro.geometry.region.Region` — polygon-set algebra wrapper with
  operator overloading (``a | b``, ``a & b``, ``a - b``, ``a ^ b``).
* :mod:`~repro.geometry.rasterize` — area-coverage rasterization used by the
  exposure simulator.

All boolean computation is carried out on an integer database-unit grid
(1 nm by default) for robustness, mirroring the integer coordinate systems
of GDSII and of the 1970s pattern generators this library models.
"""

from repro.geometry.point import Point
from repro.geometry.transform import Transform
from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.boolean import (
    boolean_trapezoids,
    boolean_polygons,
    union,
    intersection,
    difference,
    symmetric_difference,
)
from repro.geometry.region import Region
from repro.geometry.rasterize import rasterize_polygons, rasterize_trapezoids
from repro.geometry.offset import offset

__all__ = [
    "offset",
    "Point",
    "Transform",
    "Polygon",
    "Trapezoid",
    "Region",
    "boolean_trapezoids",
    "boolean_polygons",
    "union",
    "intersection",
    "difference",
    "symmetric_difference",
    "rasterize_polygons",
    "rasterize_trapezoids",
]

"""Area-coverage rasterization of polygon and trapezoid sets.

The exposure simulator needs the *fraction of each pixel covered* by the
written pattern (an anti-aliased raster), because dose is proportional to
covered area.  Rasterization is done by supersampled scanline filling with
numpy, which is exact in the limit and better than 1/(2·ss)² already at the
default supersampling.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.geometry.polygon import Polygon
from repro.geometry.trapezoid import Trapezoid


class RasterFrame:
    """A pixel grid over a rectangular window.

    Attributes:
        x0, y0: lower-left corner of the window in layout units.
        pixel: pixel pitch in layout units.
        nx, ny: grid dimensions (columns, rows).
    """

    __slots__ = ("x0", "y0", "pixel", "nx", "ny")

    def __init__(self, x0: float, y0: float, pixel: float, nx: int, ny: int) -> None:
        if pixel <= 0:
            raise ValueError("pixel pitch must be positive")
        if nx <= 0 or ny <= 0:
            raise ValueError("grid dimensions must be positive")
        self.x0 = float(x0)
        self.y0 = float(y0)
        self.pixel = float(pixel)
        self.nx = int(nx)
        self.ny = int(ny)

    @classmethod
    def around(
        cls,
        bbox: Tuple[float, float, float, float],
        pixel: float,
        margin: float = 0.0,
    ) -> "RasterFrame":
        """Frame covering ``bbox`` expanded by ``margin`` on each side."""
        x0 = bbox[0] - margin
        y0 = bbox[1] - margin
        nx = max(1, int(np.ceil((bbox[2] + margin - x0) / pixel)))
        ny = max(1, int(np.ceil((bbox[3] + margin - y0) / pixel)))
        return cls(x0, y0, pixel, nx, ny)

    def x_centers(self) -> np.ndarray:
        """Pixel-centre x coordinates (length ``nx``)."""
        return self.x0 + (np.arange(self.nx) + 0.5) * self.pixel

    def y_centers(self) -> np.ndarray:
        """Pixel-centre y coordinates (length ``ny``)."""
        return self.y0 + (np.arange(self.ny) + 0.5) * self.pixel

    def extent(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the frame window."""
        return (
            self.x0,
            self.y0,
            self.x0 + self.nx * self.pixel,
            self.y0 + self.ny * self.pixel,
        )

    def __repr__(self) -> str:
        return (
            f"RasterFrame(origin=({self.x0:g},{self.y0:g}), "
            f"pixel={self.pixel:g}, shape=({self.ny},{self.nx}))"
        )


def _scanline_coverage_rows(
    vertices: np.ndarray, frame: RasterFrame, supersample: int
) -> np.ndarray:
    """Supersampled even-odd scanline fill of one polygon.

    Returns a float array of shape ``(ny, nx)`` with per-pixel coverage in
    [0, 1].  Supersampling happens in y (rows) and analytically in x
    (fractional span clipping), which converges quickly for lithography
    shapes whose edges are long compared to the pixel.
    """
    cover = np.zeros((frame.ny, frame.nx), dtype=np.float64)
    xs = vertices[:, 0]
    ys = vertices[:, 1]
    n = len(vertices)
    x_next = np.roll(xs, -1)
    y_next = np.roll(ys, -1)

    sub = supersample
    weight = 1.0 / sub
    pixel = frame.pixel
    for row in range(frame.ny):
        for s in range(sub):
            y = frame.y0 + (row + (s + 0.5) / sub) * pixel
            # Edges crossing this sample line (half-open convention).
            mask = ((ys <= y) & (y_next > y)) | ((y_next <= y) & (ys > y))
            if not mask.any():
                continue
            x_cross = xs[mask] + (y - ys[mask]) * (x_next[mask] - xs[mask]) / (
                y_next[mask] - ys[mask]
            )
            x_cross.sort()
            for i in range(0, len(x_cross) - 1, 2):
                left = (x_cross[i] - frame.x0) / pixel
                right = (x_cross[i + 1] - frame.x0) / pixel
                if right <= 0 or left >= frame.nx:
                    continue
                left = max(left, 0.0)
                right = min(right, float(frame.nx))
                first = int(left)
                last = int(np.ceil(right)) - 1
                if first == last:
                    cover[row, first] += (right - left) * weight
                    continue
                cover[row, first] += (first + 1 - left) * weight
                if last > first + 1:
                    cover[row, first + 1 : last] += weight
                cover[row, last] += (right - last) * weight
    return cover


def rasterize_polygons(
    polygons: Iterable[Polygon],
    frame: RasterFrame,
    supersample: int = 4,
) -> np.ndarray:
    """Rasterize a polygon set to per-pixel area coverage.

    Overlapping polygons saturate at full coverage (even-odd within one
    polygon, additive-then-clipped across polygons), matching how a writer
    exposes each address at most once per pass.

    Returns:
        Array of shape ``(ny, nx)``, values in [0, 1].
    """
    total = np.zeros((frame.ny, frame.nx), dtype=np.float64)
    for poly in polygons:
        verts = np.array([(v.x, v.y) for v in poly.vertices], dtype=np.float64)
        total += _scanline_coverage_rows(verts, frame, supersample)
    np.clip(total, 0.0, 1.0, out=total)
    return total


def rasterize_trapezoids(
    traps: Sequence[Trapezoid],
    frame: RasterFrame,
    supersample: int = 4,
) -> np.ndarray:
    """Rasterize a trapezoid set (converted per-figure to polygons)."""
    return rasterize_polygons((t.to_polygon() for t in traps), frame, supersample)


def coverage_area(cover: np.ndarray, frame: RasterFrame) -> float:
    """Total covered area implied by a coverage raster."""
    return float(cover.sum()) * frame.pixel * frame.pixel

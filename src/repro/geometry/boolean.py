"""Public boolean operations on polygon sets.

All operations accept two iterables of :class:`~repro.geometry.polygon.Polygon`
and return either trapezoids (:func:`boolean_trapezoids` — the native machine
representation) or reassembled polygons (:func:`boolean_polygons`).

Supported operations, matching the operators of
:class:`~repro.geometry.region.Region`:

========= =========================================
``"or"``   union, A ∪ B
``"and"``  intersection, A ∩ B
``"sub"``  difference, A \\ B
``"xor"``  symmetric difference, A ⊕ B
========= =========================================

Coordinates are snapped to an integer database-unit grid before the sweep
(1 nm by default for µm layouts); output coordinates lie on that grid except
where slanted edges meet slab boundaries.

Two interchangeable kernels drive the sweep (``kernel=`` on
:func:`boolean_trapezoids`):

* ``"fast"`` (default) — the NumPy-vectorized exact-integer engine of
  :mod:`repro.geometry.scanline_fast`.  Bit-identical output; falls back
  to the reference automatically when coordinates exceed its exact
  range (|coord| > 2**53 database units).  Every such degradation is
  counted when the caller passes a
  :class:`~repro.geometry.scanline_fast.KernelFallbacks` instance —
  "fast" silently running at reference speed is a reportable event.
* ``"exact"`` — the original pure-Python
  :class:`fractions.Fraction` engine (:mod:`repro.geometry.scanline`),
  kept as the reference oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.polygon import Polygon
from repro.geometry.scanline import (
    DEFAULT_GRID,
    ScanEdge,
    edges_from_rings,
    evenodd,
    nonzero,
    snap_polygon,
    sweep_trapezoids,
)
from repro.geometry.trapezoid import Trapezoid

_PREDICATES: Dict[str, Callable[[bool, bool], bool]] = {
    "or": lambda a, b: a or b,
    "and": lambda a, b: a and b,
    "sub": lambda a, b: a and not b,
    "xor": lambda a, b: a != b,
}

#: Kernel used when callers do not pass one explicitly.
DEFAULT_KERNEL = "fast"

_KERNELS = ("exact", "fast")


def _prepare_edges(
    polys_a: Iterable[Polygon],
    polys_b: Iterable[Polygon],
    grid: float,
) -> List[ScanEdge]:
    rings_a = [snap_polygon(p, grid) for p in polys_a]
    rings_b = [snap_polygon(p, grid) for p in polys_b]
    edges = edges_from_rings(rings_a, 0)
    edges.extend(edges_from_rings(rings_b, 1))
    return edges


def boolean_trapezoids(
    polys_a: Iterable[Polygon],
    polys_b: Iterable[Polygon],
    operation: str,
    grid: float = DEFAULT_GRID,
    fill_rule: str = "nonzero",
    merge: bool = True,
    kernel: Optional[str] = None,
    fallbacks=None,
) -> List[Trapezoid]:
    """Boolean combination of two polygon sets as horizontal trapezoids.

    Args:
        polys_a: first operand polygon set (group A).
        polys_b: second operand polygon set (group B).
        operation: one of ``"or"``, ``"and"``, ``"sub"``, ``"xor"``.
        grid: database unit for coordinate snapping.
        fill_rule: ``"nonzero"`` or ``"evenodd"`` winding interpretation.
        merge: vertically merge compatible output trapezoids.
        kernel: ``"fast"`` (vectorized exact-integer engine, the
            default) or ``"exact"`` (the Fraction reference engine).
            Both produce bit-identical trapezoids; ``None`` selects
            :data:`DEFAULT_KERNEL`.
        fallbacks: optional
            :class:`~repro.geometry.scanline_fast.KernelFallbacks`
            accumulator; with ``kernel="fast"`` every degradation to a
            slower path increments its counters.  Ignored for
            ``kernel="exact"`` (an explicit choice is not a fallback).

    Returns:
        Disjoint trapezoids covering the result region.
    """
    try:
        predicate = _PREDICATES[operation]
    except KeyError:
        raise ValueError(
            f"unknown operation {operation!r}; expected one of {sorted(_PREDICATES)}"
        ) from None
    if fill_rule == "nonzero":
        rule = nonzero
    elif fill_rule == "evenodd":
        rule = evenodd
    else:
        raise ValueError(f"unknown fill rule {fill_rule!r}")
    if kernel is None:
        kernel = DEFAULT_KERNEL
    if kernel not in _KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
        )
    polys_a = list(polys_a)
    polys_b = list(polys_b)
    if kernel == "fast":
        from repro.geometry.scanline_fast import sweep_trapezoids_fast

        result = sweep_trapezoids_fast(
            polys_a, polys_b, operation,
            fill_rule=fill_rule, grid=grid, merge=merge,
            fallbacks=fallbacks,
        )
        if result is not None:
            return result
        # Coordinates exceed the fast kernel's exact-integer range;
        # fall through to the always-exact reference engine.
    edges = _prepare_edges(polys_a, polys_b, grid)
    return sweep_trapezoids(edges, predicate, rule, grid=grid, merge=merge)


def boolean_polygons(
    polys_a: Iterable[Polygon],
    polys_b: Iterable[Polygon],
    operation: str,
    grid: float = DEFAULT_GRID,
    fill_rule: str = "nonzero",
    kernel: Optional[str] = None,
) -> List[Polygon]:
    """Boolean combination returned as reassembled boundary polygons.

    Holes are emitted as clockwise rings; interpret the result with a
    winding fill rule.  For machine consumption prefer
    :func:`boolean_trapezoids`, which is canonical and hole-free.
    """
    traps = boolean_trapezoids(
        polys_a, polys_b, operation, grid=grid, fill_rule=fill_rule,
        merge=True, kernel=kernel,
    )
    return trapezoids_to_polygons(traps, grid=grid)


def union(polys: Iterable[Polygon], grid: float = DEFAULT_GRID) -> List[Polygon]:
    """Union of one polygon set (merges overlaps, resolves self-windings)."""
    return boolean_polygons(polys, [], "or", grid=grid)


def intersection(
    polys_a: Iterable[Polygon], polys_b: Iterable[Polygon], grid: float = DEFAULT_GRID
) -> List[Polygon]:
    """A ∩ B as polygons."""
    return boolean_polygons(polys_a, polys_b, "and", grid=grid)


def difference(
    polys_a: Iterable[Polygon], polys_b: Iterable[Polygon], grid: float = DEFAULT_GRID
) -> List[Polygon]:
    """A \\ B as polygons."""
    return boolean_polygons(polys_a, polys_b, "sub", grid=grid)


def symmetric_difference(
    polys_a: Iterable[Polygon], polys_b: Iterable[Polygon], grid: float = DEFAULT_GRID
) -> List[Polygon]:
    """A ⊕ B as polygons."""
    return boolean_polygons(polys_a, polys_b, "xor", grid=grid)


# ---------------------------------------------------------------------------
# Trapezoid-set -> polygon reassembly
# ---------------------------------------------------------------------------

_Coord = Tuple[float, float]


def _key(x: float, y: float, quantum: float) -> Tuple[int, int]:
    """Quantize a coordinate for exact endpoint matching."""
    return (round(x / quantum), round(y / quantum))


def trapezoids_to_polygons(
    traps: Sequence[Trapezoid], grid: float = DEFAULT_GRID
) -> List[Polygon]:
    """Stitch a disjoint trapezoid set back into boundary polygons.

    The boundary of the union of the trapezoids is recovered by cancelling
    interior edges: horizontal edges are split at all x-breakpoints of their
    scanline so opposite fragments cancel exactly, then the surviving
    directed edges are chained into closed loops.  Output outer boundaries
    wind counter-clockwise; holes wind clockwise.
    """
    if not traps:
        return []
    quantum = grid / 16.0

    # Directed edges, CCW per trapezoid: bottom, right, top, left.
    horizontals: Dict[int, List[Tuple[int, int, int]]] = {}
    sides: Dict[Tuple[Tuple[int, int], Tuple[int, int]], int] = {}

    def add_side(p: Tuple[int, int], q: Tuple[int, int]) -> None:
        if p == q:
            return
        reverse = (q, p)
        if sides.get(reverse, 0) > 0:
            sides[reverse] -= 1
            if sides[reverse] == 0:
                del sides[reverse]
        else:
            sides[p, q] = sides.get((p, q), 0) + 1

    for t in traps:
        bl = _key(t.x_bottom_left, t.y_bottom, quantum)
        br = _key(t.x_bottom_right, t.y_bottom, quantum)
        tr = _key(t.x_top_right, t.y_top, quantum)
        tl = _key(t.x_top_left, t.y_top, quantum)
        if bl[0] != br[0]:
            horizontals.setdefault(bl[1], []).append((bl[0], br[0], +1))
        add_side(br, tr)
        if tr[0] != tl[0]:
            horizontals.setdefault(tr[1], []).append((tr[0], tl[0], -1))
        add_side(tl, bl)

    # Resolve horizontal coverage per scanline.
    directed: List[Tuple[Tuple[int, int], Tuple[int, int]]] = []
    for (p, q), count in sides.items():
        directed.extend([(p, q)] * count)
    for y, segments in horizontals.items():
        breakpoints = sorted(
            {s[0] for s in segments} | {s[1] for s in segments}
        )
        for i in range(len(breakpoints) - 1):
            x0, x1 = breakpoints[i], breakpoints[i + 1]
            cover = 0
            for sx, ex, sign in segments:
                lo, hi = min(sx, ex), max(sx, ex)
                if lo <= x0 and x1 <= hi:
                    cover += sign
            if cover > 0:
                directed.append(((x0, y), (x1, y)))
            elif cover < 0:
                directed.append(((x1, y), (x0, y)))

    # Chain directed edges into loops, choosing the sharpest left turn at
    # junctions so outer boundaries and holes separate cleanly.
    import math

    outgoing: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
    for p, q in directed:
        outgoing.setdefault(p, []).append(q)

    polygons: List[Polygon] = []
    while outgoing:
        start = next(iter(outgoing))
        loop = [start]
        prev_dir = None
        current = start
        while True:
            choices = outgoing.get(current)
            if not choices:
                break
            if prev_dir is None or len(choices) == 1:
                nxt = choices[0]
            else:
                def turn(candidate: Tuple[int, int]) -> float:
                    dx = candidate[0] - current[0]
                    dy = candidate[1] - current[1]
                    angle = math.atan2(dy, dx) - math.atan2(prev_dir[1], prev_dir[0])
                    while angle <= -math.pi:
                        angle += 2 * math.pi
                    while angle > math.pi:
                        angle -= 2 * math.pi
                    return angle
                nxt = max(choices, key=turn)
            choices.remove(nxt)
            if not choices:
                del outgoing[current]
            prev_dir = (nxt[0] - current[0], nxt[1] - current[1])
            current = nxt
            if current == start:
                break
            loop.append(current)
        if len(loop) >= 3:
            poly = Polygon(
                [(x * quantum, y * quantum) for x, y in loop]
            )
            try:
                polygons.append(poly.simplified(tol=quantum / 4.0))
            except ValueError:
                continue
    return polygons

"""Stacked vertex/trapezoid arrays for the vectorized geometry kernel.

The scalar geometry types (:class:`~repro.geometry.polygon.Polygon`,
:class:`~repro.geometry.trapezoid.Trapezoid`) are convenient but cost a
Python object per vertex.  The hot paths — grid snapping, affine
transformation, trapezoid replication — operate on *sets* of polygons,
so this module provides a stacked representation: one ``(N, 2)`` float64
coordinate array plus a ``(P + 1,)`` offset array delimiting the rings,
and a ``(N, 6)`` array for trapezoid batches.

Every vectorized routine here replicates the scalar arithmetic
operation-for-operation (same IEEE-754 operations in the same order), so
results are bit-identical to the scalar code paths they accelerate.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from repro.geometry.polygon import Polygon
from repro.geometry.transform import Transform
from repro.geometry.trapezoid import Trapezoid

StackedRings = Tuple[np.ndarray, np.ndarray]


def stack_polygons(polygons: Sequence[Polygon]) -> StackedRings:
    """Stack polygon vertex rings into ``(coords (N,2), offsets (P+1,))``.

    ``coords[offsets[i]:offsets[i+1]]`` is polygon ``i``'s vertex ring.
    """
    counts = np.empty(len(polygons) + 1, dtype=np.int64)
    counts[0] = 0
    for i, p in enumerate(polygons):
        counts[i + 1] = len(p.vertices)
    offsets = np.cumsum(counts)
    coords = np.empty((int(offsets[-1]), 2), dtype=np.float64)
    pos = 0
    for p in polygons:
        for v in p.vertices:
            coords[pos, 0] = v.x
            coords[pos, 1] = v.y
            pos += 1
    return coords, offsets


def snap_coords(coords: np.ndarray, grid: float) -> np.ndarray:
    """Vectorized grid snap, bit-identical to :func:`predicates.snap`.

    The scalar rule is half-up rounding away from zero implemented as
    ``int(v/grid + 0.5)`` for non-negative and ``-int(-v/grid + 0.5)``
    for negative values; ``int()`` truncates, so the vector form uses
    :func:`numpy.trunc` on the same intermediate expressions.
    """
    scaled = coords / grid
    snapped = np.where(
        scaled >= 0.0, np.trunc(scaled + 0.5), -np.trunc(-scaled + 0.5)
    )
    return snapped.astype(np.int64)


def snap_rings(polygons: Sequence[Polygon], grid: float) -> StackedRings:
    """Snap many polygons to the integer grid in one vectorized pass.

    Equivalent to ``[snap_polygon(p, grid) for p in polygons]`` (same
    snapping, same consecutive-duplicate and closing-duplicate removal)
    but returned as stacked int64 arrays.
    """
    coords, offsets = stack_polygons(polygons)
    return snap_stacked(coords, offsets, grid)


def snap_stacked(
    coords: np.ndarray, offsets: np.ndarray, grid: float
) -> StackedRings:
    """Snap already-stacked rings to the integer grid.

    Same contract as :func:`snap_rings` but takes the raw stacked
    ``(coords, offsets)`` pair, so callers that need to inspect the raw
    float coordinates first (e.g. the fast kernel's overflow pre-check,
    which must reject magnitudes where the float->int64 cast would be
    undefined) can stack once and snap afterwards.
    """
    snapped = snap_coords(coords, grid)
    n = snapped.shape[0]
    if n == 0:
        return snapped, offsets

    ring_id = np.repeat(
        np.arange(len(offsets) - 1), np.diff(offsets)
    )
    # Keep a vertex when it differs from its predecessor in the same ring
    # (ring-first vertices are always kept at this stage).
    keep = np.ones(n, dtype=bool)
    same_as_prev = np.zeros(n, dtype=bool)
    same_as_prev[1:] = (
        (snapped[1:, 0] == snapped[:-1, 0])
        & (snapped[1:, 1] == snapped[:-1, 1])
        & (ring_id[1:] == ring_id[:-1])
    )
    keep &= ~same_as_prev

    # Drop the closing duplicate: last kept vertex equal to the first
    # kept vertex of the same ring (only when the ring still has >= 2).
    kept_counts = np.zeros(len(offsets) - 1, dtype=np.int64)
    np.add.at(kept_counts, ring_id[keep], 1)
    kept_idx = np.nonzero(keep)[0]
    kept_ring = ring_id[kept_idx]
    ring_starts_k = np.searchsorted(kept_ring, np.arange(len(offsets) - 1))
    ring_ends_k = np.searchsorted(
        kept_ring, np.arange(len(offsets) - 1), side="right"
    )
    for r in range(len(offsets) - 1):
        lo, hi = ring_starts_k[r], ring_ends_k[r]
        if hi - lo >= 2:
            first, last = kept_idx[lo], kept_idx[hi - 1]
            if (
                snapped[first, 0] == snapped[last, 0]
                and snapped[first, 1] == snapped[last, 1]
            ):
                keep[last] = False
                kept_counts[r] -= 1

    out = snapped[keep]
    out_offsets = np.empty(len(offsets), dtype=np.int64)
    out_offsets[0] = 0
    np.cumsum(kept_counts, out=out_offsets[1:])
    return out, out_offsets


# ---------------------------------------------------------------------------
# Affine transforms over stacked arrays
# ---------------------------------------------------------------------------


def transform_coords(coords: np.ndarray, t: Transform) -> np.ndarray:
    """Apply an affine transform to an ``(N, 2)`` coordinate array.

    Bit-identical to :meth:`Transform.apply` per point (same operation
    order: ``a*x + b*y + e``).
    """
    xs = coords[:, 0]
    ys = coords[:, 1]
    out = np.empty_like(coords)
    out[:, 0] = t.a * xs + t.b * ys + t.e
    out[:, 1] = t.c * xs + t.d * ys + t.f
    return out


def transform_polygons(
    polygons: Sequence[Polygon], t: Transform
) -> List[Polygon]:
    """Batch equivalent of ``[p.transformed(t) for p in polygons]``.

    One vectorized affine pass over the stacked vertex array; winding is
    reversed for mirroring transforms exactly as the scalar method does.
    """
    if not polygons:
        return []
    coords, offsets = stack_polygons(polygons)
    moved = transform_coords(coords, t)
    reverse = not t.is_orientation_preserving()
    out: List[Polygon] = []
    for i in range(len(polygons)):
        ring = moved[offsets[i] : offsets[i + 1]]
        if reverse:
            ring = ring[::-1]
        out.append(Polygon([(x, y) for x, y in ring.tolist()]))
    return out


# ---------------------------------------------------------------------------
# Trapezoid batches
# ---------------------------------------------------------------------------

#: Column order of a stacked trapezoid array.
TRAP_COLUMNS = (
    "y_bottom",
    "y_top",
    "x_bottom_left",
    "x_bottom_right",
    "x_top_left",
    "x_top_right",
)


def trapezoid_array(traps: Iterable[Trapezoid]) -> np.ndarray:
    """Stack trapezoids into an ``(N, 6)`` float64 array (TRAP_COLUMNS)."""
    traps = list(traps)
    arr = np.empty((len(traps), 6), dtype=np.float64)
    for i, t in enumerate(traps):
        arr[i, 0] = t.y_bottom
        arr[i, 1] = t.y_top
        arr[i, 2] = t.x_bottom_left
        arr[i, 3] = t.x_bottom_right
        arr[i, 4] = t.x_top_left
        arr[i, 5] = t.x_top_right
    return arr


def trapezoids_from_array(arr: np.ndarray) -> List[Trapezoid]:
    """Rebuild :class:`Trapezoid` objects from an ``(N, 6)`` array."""
    return [
        Trapezoid(yb, yt, xbl, xbr, xtl, xtr)
        for yb, yt, xbl, xbr, xtl, xtr in arr.tolist()
    ]


def transform_trapezoid_array(arr: np.ndarray, t: Transform) -> np.ndarray:
    """Vectorized horizontality-preserving transform of a trapezoid batch.

    Bit-identical to :func:`repro.core.hierarchical.transform_trapezoid`
    applied per row: the same products and sums in the same order, the
    same vertical-flip and left/right re-sorting rules.

    Raises:
        ValueError: if ``t`` would tilt the horizontal edges.
    """
    if abs(t.c) > 1e-12:
        raise ValueError("transform does not preserve horizontal edges")
    yb, yt = arr[:, 0], arr[:, 1]
    xbl, xbr, xtl, xtr = arr[:, 2], arr[:, 3], arr[:, 4], arr[:, 5]
    y0 = t.d * yb + t.f
    y1 = t.d * yt + t.f
    bl = t.a * xbl + t.b * yb + t.e
    br = t.a * xbr + t.b * yb + t.e
    tl = t.a * xtl + t.b * yt + t.e
    tr = t.a * xtr + t.b * yt + t.e
    flip = y1 < y0
    y0_out = np.where(flip, y1, y0)
    y1_out = np.where(flip, y0, y1)
    bl, tl = np.where(flip, tl, bl), np.where(flip, bl, tl)
    br, tr = np.where(flip, tr, br), np.where(flip, br, tr)
    swap_b = bl > br
    bl, br = np.where(swap_b, br, bl), np.where(swap_b, bl, br)
    swap_t = tl > tr
    tl, tr = np.where(swap_t, tr, tl), np.where(swap_t, tl, tr)
    return np.column_stack((y0_out, y1_out, bl, br, tl, tr))

"""Polygon-set algebra with operator overloading.

:class:`Region` wraps a list of polygons and exposes boolean set operations
through Python operators, KLayout-style::

    metal = Region([Polygon.rectangle(0, 0, 10, 2)])
    via = Region([Polygon.rectangle(4, -1, 6, 3)])
    keepout = metal - via
    total = metal | via

Regions are immutable; every operation returns a new region whose polygons
come from the scanline boolean engine (so they are normalized: disjoint,
winding-consistent).
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Tuple

from repro.geometry.boolean import boolean_polygons, boolean_trapezoids
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID
from repro.geometry.trapezoid import Trapezoid


class Region:
    """An immutable set of polygons closed under boolean operations."""

    __slots__ = ("polygons", "grid")

    def __init__(
        self,
        polygons: Iterable[Polygon] = (),
        grid: float = DEFAULT_GRID,
    ) -> None:
        self.polygons: Tuple[Polygon, ...] = tuple(polygons)
        self.grid = grid

    # -- constructors ---------------------------------------------------

    @classmethod
    def from_rectangles(
        cls,
        rects: Iterable[Tuple[float, float, float, float]],
        grid: float = DEFAULT_GRID,
    ) -> "Region":
        """Region from ``(x0, y0, x1, y1)`` rectangle tuples."""
        return cls([Polygon.rectangle(*r) for r in rects], grid=grid)

    @classmethod
    def empty(cls, grid: float = DEFAULT_GRID) -> "Region":
        """The empty region."""
        return cls((), grid=grid)

    # -- algebra ----------------------------------------------------------

    def _combine(self, other: "Region", op: str) -> "Region":
        polys = boolean_polygons(self.polygons, other.polygons, op, grid=self.grid)
        return Region(polys, grid=self.grid)

    def __or__(self, other: "Region") -> "Region":
        return self._combine(other, "or")

    def __and__(self, other: "Region") -> "Region":
        return self._combine(other, "and")

    def __sub__(self, other: "Region") -> "Region":
        return self._combine(other, "sub")

    def __xor__(self, other: "Region") -> "Region":
        return self._combine(other, "xor")

    def merged(self) -> "Region":
        """Self-union: resolve overlaps within the region."""
        return Region(
            boolean_polygons(self.polygons, [], "or", grid=self.grid),
            grid=self.grid,
        )

    def sized(self, delta: float) -> "Region":
        """Offset (bias) the region: grow for ``delta > 0``, shrink for
        ``delta < 0``.  Features narrower than ``2·|delta|`` vanish on
        shrink; grown features that touch merge."""
        from repro.geometry.offset import offset

        return Region(
            offset(list(self.polygons), delta, grid=self.grid),
            grid=self.grid,
        )

    # -- measures -----------------------------------------------------------

    def area(self) -> float:
        """Area of the region (overlaps counted once)."""
        return sum(t.area() for t in self.trapezoids())

    def raw_area(self) -> float:
        """Sum of member polygon areas (overlaps counted multiply)."""
        return sum(p.area() for p in self.polygons)

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` over all member polygons.

        Raises:
            ValueError: for an empty region.
        """
        if not self.polygons:
            raise ValueError("empty region has no bounding box")
        boxes = [p.bounding_box() for p in self.polygons]
        return (
            min(b[0] for b in boxes),
            min(b[1] for b in boxes),
            max(b[2] for b in boxes),
            max(b[3] for b in boxes),
        )

    def is_empty(self) -> bool:
        """True if the region has no area."""
        return not self.polygons or self.area() == 0.0

    def contains_point(self, point) -> bool:
        """Nonzero-winding containment over the whole set."""
        winding_hits = sum(1 for p in self.polygons if p.contains_point(point))
        return winding_hits % 2 == 1 or winding_hits > 0

    # -- conversions ----------------------------------------------------------

    def trapezoids(self, merge: bool = True) -> List[Trapezoid]:
        """Canonical disjoint trapezoid decomposition (the machine view)."""
        return boolean_trapezoids(
            self.polygons, [], "or", grid=self.grid, merge=merge
        )

    def transformed(self, transform) -> "Region":
        """Apply an affine transform to every member polygon."""
        return Region(
            [p.transformed(transform) for p in self.polygons], grid=self.grid
        )

    def translated(self, dx: float, dy: float) -> "Region":
        """Copy shifted by ``(dx, dy)``."""
        return Region(
            [p.translated(dx, dy) for p in self.polygons], grid=self.grid
        )

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.polygons)

    def __iter__(self) -> Iterator[Polygon]:
        return iter(self.polygons)

    def __bool__(self) -> bool:
        return bool(self.polygons)

    def __repr__(self) -> str:
        return f"Region({len(self.polygons)} polygons, grid={self.grid:g})"

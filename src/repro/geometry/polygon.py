"""Simple polygon type used throughout the toolchain.

A :class:`Polygon` is an ordered list of vertices with implicit closure.
Self-intersecting inputs are tolerated by the boolean engine (which
interprets them with a fill rule), but the predicates on this class assume a
simple polygon.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point
from repro.geometry.transform import Transform

Coordinate = "Point | Tuple[float, float]"


class Polygon:
    """A polygon given by its vertex ring (implicitly closed).

    Vertices may wind in either direction; :meth:`orientation` reports the
    winding and :meth:`normalized` re-winds counter-clockwise.

    >>> unit = Polygon.rectangle(0, 0, 1, 1)
    >>> unit.area()
    1.0
    >>> unit.contains_point((0.5, 0.5))
    True
    """

    __slots__ = ("vertices",)

    def __init__(self, vertices: Iterable[Coordinate]) -> None:
        pts = [Point.of(v) for v in vertices]
        if len(pts) >= 2 and pts[0] == pts[-1]:
            pts = pts[:-1]
        if len(pts) < 3:
            raise ValueError(f"polygon needs at least 3 vertices, got {len(pts)}")
        self.vertices: List[Point] = pts

    # -- constructors ---------------------------------------------------

    @classmethod
    def rectangle(cls, x0: float, y0: float, x1: float, y1: float) -> "Polygon":
        """Axis-aligned rectangle spanning the two corners."""
        xa, xb = sorted((x0, x1))
        ya, yb = sorted((y0, y1))
        return cls([(xa, ya), (xb, ya), (xb, yb), (xa, yb)])

    @classmethod
    def square(cls, center: Coordinate, side: float) -> "Polygon":
        """Axis-aligned square of side ``side`` centred on ``center``."""
        c = Point.of(center)
        h = side / 2.0
        return cls.rectangle(c.x - h, c.y - h, c.x + h, c.y + h)

    @classmethod
    def regular(
        cls, center: Coordinate, radius: float, sides: int, phase_rad: float = 0.0
    ) -> "Polygon":
        """Regular polygon with ``sides`` vertices on a circle of ``radius``."""
        if sides < 3:
            raise ValueError("a regular polygon needs at least 3 sides")
        c = Point.of(center)
        step = 2.0 * math.pi / sides
        return cls(
            [
                (
                    c.x + radius * math.cos(phase_rad + i * step),
                    c.y + radius * math.sin(phase_rad + i * step),
                )
                for i in range(sides)
            ]
        )

    @classmethod
    def annulus_sector(
        cls,
        center: Coordinate,
        r_inner: float,
        r_outer: float,
        start_rad: float,
        end_rad: float,
        points_per_arc: int = 32,
    ) -> "Polygon":
        """Polygonal approximation of an annular sector (ring segment).

        Used by the Fresnel-zone-plate generator; the arc is sampled with
        ``points_per_arc`` vertices on each radius.
        """
        if r_outer <= r_inner:
            raise ValueError("r_outer must exceed r_inner")
        if points_per_arc < 2:
            raise ValueError("points_per_arc must be at least 2")
        c = Point.of(center)
        angles = [
            start_rad + (end_rad - start_rad) * i / (points_per_arc - 1)
            for i in range(points_per_arc)
        ]
        outer = [
            (c.x + r_outer * math.cos(a), c.y + r_outer * math.sin(a)) for a in angles
        ]
        inner = [
            (c.x + r_inner * math.cos(a), c.y + r_inner * math.sin(a))
            for a in reversed(angles)
        ]
        return cls(outer + inner)

    @classmethod
    def from_path(
        cls, points: Sequence[Coordinate], width: float
    ) -> "Polygon":
        """Expand an open centre-line path into a constant-width polygon.

        Uses mitred joins; suitable for Manhattan and gently turning wires.
        """
        pts = [Point.of(p) for p in points]
        if len(pts) < 2:
            raise ValueError("a path needs at least 2 points")
        if width <= 0:
            raise ValueError("path width must be positive")
        half = width / 2.0
        left: List[Point] = []
        right: List[Point] = []
        n = len(pts)
        for i in range(n):
            if i == 0:
                d = (pts[1] - pts[0]).unit()
                normal = d.perpendicular()
                left.append(pts[0] + normal * half)
                right.append(pts[0] - normal * half)
            elif i == n - 1:
                d = (pts[-1] - pts[-2]).unit()
                normal = d.perpendicular()
                left.append(pts[-1] + normal * half)
                right.append(pts[-1] - normal * half)
            else:
                d_in = (pts[i] - pts[i - 1]).unit()
                d_out = (pts[i + 1] - pts[i]).unit()
                bisector = d_in + d_out
                if bisector.norm() < 1e-12:
                    # U-turn: fall back to the incoming normal.
                    normal = d_in.perpendicular()
                    left.append(pts[i] + normal * half)
                    right.append(pts[i] - normal * half)
                    continue
                bisector = bisector.unit()
                miter_normal = bisector.perpendicular()
                cos_half = d_in.dot(bisector)
                scale = half / max(cos_half, 0.1)
                left.append(pts[i] + miter_normal * scale)
                right.append(pts[i] - miter_normal * scale)
        return cls(left + list(reversed(right)))

    # -- basic measures ---------------------------------------------------

    def signed_area(self) -> float:
        """Shoelace signed area (positive for counter-clockwise winding)."""
        total = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            total += a.x * b.y - b.x * a.y
        return total / 2.0

    def area(self) -> float:
        """Absolute enclosed area."""
        return abs(self.signed_area())

    def perimeter(self) -> float:
        """Total boundary length."""
        verts = self.vertices
        n = len(verts)
        return sum(verts[i].distance(verts[(i + 1) % n]) for i in range(n))

    def centroid(self) -> Point:
        """Area centroid (assumes a simple polygon)."""
        a2 = 0.0
        cx = 0.0
        cy = 0.0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            p = verts[i]
            q = verts[(i + 1) % n]
            cross = p.x * q.y - q.x * p.y
            a2 += cross
            cx += (p.x + q.x) * cross
            cy += (p.y + q.y) * cross
        if abs(a2) < 1e-300:
            # Degenerate: fall back to vertex mean.
            return Point(
                sum(v.x for v in verts) / n, sum(v.y for v in verts) / n
            )
        return Point(cx / (3.0 * a2), cy / (3.0 * a2))

    def orientation(self) -> int:
        """``+1`` for counter-clockwise winding, ``-1`` for clockwise."""
        return 1 if self.signed_area() >= 0 else -1

    def bounding_box(self) -> Tuple[float, float, float, float]:
        """``(xmin, ymin, xmax, ymax)`` of the vertex ring."""
        xs = [v.x for v in self.vertices]
        ys = [v.y for v in self.vertices]
        return (min(xs), min(ys), max(xs), max(ys))

    # -- predicates --------------------------------------------------------

    def contains_point(self, point: Coordinate, include_boundary: bool = True) -> bool:
        """Nonzero-winding point containment test."""
        p = Point.of(point)
        winding = 0
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            # Boundary check: collinear and within the segment box.
            cross = (b.x - a.x) * (p.y - a.y) - (b.y - a.y) * (p.x - a.x)
            if abs(cross) < 1e-12 * max(1.0, a.distance(b)):
                if (
                    min(a.x, b.x) - 1e-12 <= p.x <= max(a.x, b.x) + 1e-12
                    and min(a.y, b.y) - 1e-12 <= p.y <= max(a.y, b.y) + 1e-12
                ):
                    return include_boundary
            if a.y <= p.y:
                if b.y > p.y and cross > 0:
                    winding += 1
            else:
                if b.y <= p.y and cross < 0:
                    winding -= 1
        return winding != 0

    def is_convex(self) -> bool:
        """True if all turns share one sign (collinear runs allowed)."""
        verts = self.vertices
        n = len(verts)
        sign = 0
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            c = verts[(i + 2) % n]
            cross = (b - a).cross(c - b)
            if abs(cross) < 1e-12:
                continue
            s = 1 if cross > 0 else -1
            if sign == 0:
                sign = s
            elif s != sign:
                return False
        return True

    def is_rectilinear(self, tol: float = 1e-9) -> bool:
        """True if every edge is axis-parallel (Manhattan geometry)."""
        verts = self.vertices
        n = len(verts)
        for i in range(n):
            a = verts[i]
            b = verts[(i + 1) % n]
            if abs(a.x - b.x) > tol and abs(a.y - b.y) > tol:
                return False
        return True

    # -- operations ----------------------------------------------------------

    def normalized(self) -> "Polygon":
        """Counter-clockwise copy with duplicate consecutive vertices removed."""
        verts: List[Point] = []
        for v in self.vertices:
            if not verts or not v.almost_equals(verts[-1]):
                verts.append(v)
        if len(verts) >= 2 and verts[0].almost_equals(verts[-1]):
            verts.pop()
        if len(verts) < 3:
            raise ValueError("polygon degenerates after deduplication")
        poly = Polygon(verts)
        if poly.orientation() < 0:
            poly = Polygon(list(reversed(verts)))
        return poly

    def simplified(self, tol: float = 0.0) -> "Polygon":
        """Remove collinear vertices (within perpendicular distance ``tol``)."""
        verts = self.vertices
        n = len(verts)
        keep: List[Point] = []
        for i in range(n):
            a = verts[(i - 1) % n]
            b = verts[i]
            c = verts[(i + 1) % n]
            edge = c - a
            edge_len = edge.norm()
            if edge_len < 1e-15:
                continue
            deviation = abs(edge.cross(b - a)) / edge_len
            if deviation > tol:
                keep.append(b)
        if len(keep) < 3:
            return self
        return Polygon(keep)

    def transformed(self, transform: Transform) -> "Polygon":
        """Apply an affine transform; re-winds if the transform mirrors."""
        verts = transform.apply_many(self.vertices)
        if not transform.is_orientation_preserving():
            verts = list(reversed(verts))
        return Polygon(verts)

    def translated(self, dx: float, dy: float) -> "Polygon":
        """Copy shifted by ``(dx, dy)``."""
        return Polygon([Point(v.x + dx, v.y + dy) for v in self.vertices])

    def scaled(self, factor: float, about: Coordinate = (0.0, 0.0)) -> "Polygon":
        """Copy scaled isotropically about ``about``."""
        c = Point.of(about)
        return Polygon(
            [
                Point(c.x + (v.x - c.x) * factor, c.y + (v.y - c.y) * factor)
                for v in self.vertices
            ]
        )

    def rotated(self, angle_rad: float, about: Coordinate = (0.0, 0.0)) -> "Polygon":
        """Copy rotated counter-clockwise about ``about``."""
        c = Point.of(about)
        return Polygon([v.rotated(angle_rad, c) for v in self.vertices])

    def clip_half_plane(
        self, anchor: Coordinate, normal: Coordinate
    ) -> "Polygon | None":
        """Sutherland–Hodgman clip against ``dot(p - anchor, normal) >= 0``.

        Returns ``None`` if the polygon lies entirely outside.
        """
        a = Point.of(anchor)
        n = Point.of(normal)
        output: List[Point] = []
        verts = self.vertices
        count = len(verts)
        for i in range(count):
            current = verts[i]
            nxt = verts[(i + 1) % count]
            cur_in = (current - a).dot(n) >= 0
            nxt_in = (nxt - a).dot(n) >= 0
            if cur_in:
                output.append(current)
            if cur_in != nxt_in:
                denom = (nxt - current).dot(n)
                if abs(denom) > 1e-300:
                    t = (a - current).dot(n) / denom
                    output.append(current + (nxt - current) * t)
        cleaned: List[Point] = []
        for v in output:
            if not cleaned or not v.almost_equals(cleaned[-1], tol=1e-12):
                cleaned.append(v)
        if len(cleaned) >= 2 and cleaned[0].almost_equals(cleaned[-1], tol=1e-12):
            cleaned.pop()
        if len(cleaned) < 3:
            return None
        return Polygon(cleaned)

    def clip_box(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> "Polygon | None":
        """Clip against an axis-aligned box (four half-plane clips)."""
        xa, xb = sorted((x0, x1))
        ya, yb = sorted((y0, y1))
        poly: "Polygon | None" = self
        for anchor, normal in (
            ((xa, ya), (1.0, 0.0)),
            ((xb, yb), (-1.0, 0.0)),
            ((xa, ya), (0.0, 1.0)),
            ((xb, yb), (0.0, -1.0)),
        ):
            if poly is None:
                return None
            poly = poly.clip_half_plane(anchor, normal)
        return poly

    # -- dunder -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self.vertices)

    def __iter__(self):
        return iter(self.vertices)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Polygon):
            return NotImplemented
        return self.vertices == other.vertices

    def __repr__(self) -> str:
        head = ", ".join(f"({v.x:g}, {v.y:g})" for v in self.vertices[:4])
        tail = ", ..." if len(self.vertices) > 4 else ""
        return f"Polygon([{head}{tail}], n={len(self.vertices)})"

"""Polygon offsetting (sizing): grow or shrink by a bias distance.

Mask making constantly biases geometry — etch compensation, proximity
pre-bias, overlap generation.  The implementation is the *boundary-band*
(Minkowski-with-a-square) construction, which is inversion-proof:

* **Grow** (``delta > 0``): union of the original polygons with, for
  every boundary edge, the quad swept by displacing that edge outward,
  plus a square cap at every vertex.  Dilation only ever adds area, so
  features and holes never invert; a hole narrower than ``2·delta``
  closes exactly.
* **Shrink** (``delta < 0``): erosion via the complement —
  ``P ⊖ r = P \\ dilate(window \\ P, r)`` — so features narrower than
  ``2·|delta|`` vanish instead of inverting.

Joins are *square* (the vertex cap), which is exact for rectilinear
geometry and overshoots a true round join at non-axis corners by at most
``r·(√2−1)``.  :func:`offset_ring` additionally provides the classic
mitred ring displacement for callers that want mitred joins on convex
geometry.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.geometry.boolean import boolean_polygons
from repro.geometry.point import Point
from repro.geometry.polygon import Polygon
from repro.geometry.scanline import DEFAULT_GRID

#: Corners sharper than this (miter length in units of |delta|) are
#: bevelled instead of mitred by :func:`offset_ring`.
MITER_LIMIT = 4.0


def offset_ring(polygon: Polygon, delta: float) -> List[Point]:
    """Raw mitred displacement of one vertex ring.

    The ring's own winding defines its inside: positive ``delta``
    displaces every edge along the right-of-travel normal, which grows
    the solid for counter-clockwise outer rings **and** shrinks the void
    for clockwise hole rings.

    Returns the displaced ring.  May self-intersect or invert when the
    displacement exceeds the ring's inradius — the band-based
    :func:`offset` does not have this failure mode and should be
    preferred for production sizing.
    """
    verts = _clean_vertices(polygon)
    n = len(verts)
    if n < 3:
        return []
    out: List[Point] = []
    for i in range(n):
        prev_pt = verts[(i - 1) % n]
        here = verts[i]
        next_pt = verts[(i + 1) % n]
        d_in = (here - prev_pt).unit()
        d_out = (next_pt - here).unit()
        n_in = Point(d_in.y, -d_in.x)
        n_out = Point(d_out.y, -d_out.x)
        bisector = n_in + n_out
        blen = bisector.norm()
        if blen < 1e-12:
            out.append(here + n_in * delta)
            out.append(here + n_out * delta)
            continue
        bisector = bisector / blen
        cos_half = bisector.dot(n_in)
        if cos_half <= 1e-9 or 1.0 / cos_half > MITER_LIMIT:
            out.append(here + n_in * delta)
            out.append(here + n_out * delta)
        else:
            out.append(here + bisector * (delta / cos_half))
    return out


def _clean_vertices(polygon: Polygon) -> List[Point]:
    verts: List[Point] = []
    for v in polygon.vertices:
        if not verts or not v.almost_equals(verts[-1]):
            verts.append(v)
    if len(verts) >= 2 and verts[0].almost_equals(verts[-1]):
        verts.pop()
    return verts


def _boundary_band(polygons: Sequence[Polygon], radius: float) -> List[Polygon]:
    """Edge quads and vertex caps covering everything within ``radius``
    outside the given (winding-normalized) polygon set's boundary."""
    band: List[Polygon] = []
    for poly in polygons:
        verts = _clean_vertices(poly)
        n = len(verts)
        if n < 3:
            continue
        for i in range(n):
            p = verts[i]
            q = verts[(i + 1) % n]
            edge = q - p
            length = edge.norm()
            if length < 1e-12:
                continue
            normal = Point(edge.y, -edge.x) / length
            quad = Polygon(
                [p, q, q + normal * radius, p + normal * radius]
            ).normalized()
            band.append(quad)
            band.append(
                Polygon.rectangle(p.x - radius, p.y - radius,
                                  p.x + radius, p.y + radius)
            )
    return band


def offset(
    polygons: Union[Sequence[Polygon], Polygon],
    delta: float,
    grid: float = DEFAULT_GRID,
) -> List[Polygon]:
    """Offset a polygon set by ``delta`` (grow > 0, shrink < 0).

    Returns:
        The offset polygon set (outer rings CCW, holes CW); empty after
        a shrink that consumes every feature.
    """
    if isinstance(polygons, Polygon):
        polygons = [polygons]
    polygons = list(polygons)
    if not polygons:
        return []
    normalized = boolean_polygons(polygons, [], "or", grid=grid)
    if delta == 0.0 or not normalized:
        return normalized
    if delta > 0:
        band = _boundary_band(normalized, delta)
        return boolean_polygons(normalized + band, [], "or", grid=grid)

    radius = -delta
    boxes = [p.bounding_box() for p in normalized]
    x0 = min(b[0] for b in boxes) - 3 * radius
    y0 = min(b[1] for b in boxes) - 3 * radius
    x1 = max(b[2] for b in boxes) + 3 * radius
    y1 = max(b[3] for b in boxes) + 3 * radius
    window = Polygon.rectangle(x0, y0, x1, y1)
    complement = boolean_polygons([window], normalized, "sub", grid=grid)
    band = _boundary_band(complement, radius)
    if not band:
        return normalized
    return boolean_polygons(normalized, band, "sub", grid=grid)

"""Vectorized exact-integer scanline kernel.

A NumPy reimplementation of :mod:`repro.geometry.scanline` that produces
**bit-identical** trapezoids without creating a single
:class:`fractions.Fraction` in the hot loop.  The reference engine stays
as the oracle (``kernel="exact"`` on
:func:`repro.geometry.boolean.boolean_trapezoids`); this module is the
default (``kernel="fast"``).

Why exactness survives vectorization
------------------------------------
All coordinates are snapped to an int64 grid and bounded by
:data:`COORD_LIMIT` (= 2**53 database units — checked up front, with a
*counted* fallback to the reference engine beyond it; see
:class:`KernelFallbacks`).  Every x coordinate of an edge at a slab
boundary ``y = bn/bd`` (integer boundaries have ``bd = 1``; boundaries
created by edge/edge crossings are rational) is the rational ::

    x = num / den
    num = x0*dy*bd + (bn - y0*bd)*dx
    den = dy*bd            (dy > 0, bd > 0)

and the sweep orders, folds and emits edges purely by that rational,
through one of three exact order embeddings chosen by the coordinate
magnitude ``B = max |coord|``:

* **Float key** (``B <= 2**24``, integer-bounded slabs).  Here ``num =
  x0*dy + (y - y0)*dx`` satisfies ``|num| <= 2*B**2 < 2**53`` (x at an
  in-range y lies between x0 and x1, so ``|num| = |x|*dy``) and ``den =
  dy <= 2**25``, so both are exactly representable float64 values and
  ``float64(num)/float64(den)`` is the correctly rounded quotient —
  exactly ``float(Fraction(num, den))``.  Writing ``num/den = q +
  r/den`` (floored division), the pair ``(q, float64(r/den))`` is an
  exact order embedding: two distinct fractions in [0, 1) with
  denominators <= 2**25 differ by at least 2**-50, which exceeds twice
  the 2**-54 rounding error, so their correctly rounded floats differ
  whenever the rationals do.
* **Multi-word int64 key** (``B <= 2**31 - 1``, integer-bounded slabs).
  ``|num| <= 2*B**2 < 2**63`` still fits int64 exactly — the
  intermediate products ``x0*dy`` and ``(y - y0)*dx`` may individually
  wrap, but int64 arithmetic is modular and the true sum is in range,
  so the computed sum is exact.  The key is ``q`` plus three 31-bit
  digit words of the fractional part ``r/dy``, each computed as
  ``(r << 31) // dy`` (no overflow: ``r < dy <= 2**32 - 2``).  The 93
  fractional bits exceed ``2 * bits(dy)``: two distinct fractions with
  denominators below 2**32 differ by more than 2**-64 > 2**-93, so
  truncation to 93 bits preserves both order and distinctness.
* **Big-integer key** (``B <= 2**53`` integer-bounded slabs, and *all*
  rational-bounded slabs).  ``num``/``den`` are computed in
  object-dtype arrays of Python ints — exact at any size.  The key is
  ``q`` (fits int64: ``|q| <= B + 1``) plus K adaptive
  :data:`_WORD_BITS`-bit digit words, with K chosen so that ``54*K >=
  2 * bits(max den)``; the same truncation argument applies.  Crossing
  denominators are bounded by ``8*B**2`` (a difference of two products
  of coordinate deltas) and ``dy`` by ``2*B``, so ``bits(den) <= 164``
  and ``K <= 7`` always; :data:`_MAX_FRACTION_WORDS` (= 8) is a
  *counted* safety valve, not a reachable limit.

Emitted coordinates are correctly rounded in every regime: the float
key regime divides exactly representable float64 operands; the wider
regimes divide Python ints (CPython's ``int / int`` is correctly
rounded) — both match ``float(Fraction(num, den))`` bit for bit.

Within a slab no two active edges cross (that is what slab boundaries
are for), so the reference order "by x at the slab's midline" equals
the lexicographic order by (x at bottom, x at top), and edges that
compare equal are collinear through the whole slab — the reference's
fold-equal-x transition semantics carry over unchanged.  Slabs bounded
by rational crossing ys go through the *same* vectorized sweep with
big-integer keys; the scalar ``ScanEdge`` + ``Fraction`` path survives
only as the unreachable safety valve above, and running it increments
``KernelFallbacks.rational_slab``.

Edge/edge crossings are *detected* with vectorized cross products
(bbox-pruned, strictly interior crossings only — crossings at edge
endpoints contribute no new slab boundary): int64 products are exact
for ``B <= 2**29`` (``8*B**2 < 2**63``); above that the pruned
candidate arrays are promoted to Python-int objects, keeping detection
exact at any accepted magnitude.  The few survivors are evaluated with
exact Python integers and deduplicated as reduced fractions — never as
floats, so crossing ys that would collide after rounding stay
distinct.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.polygon import Polygon
from repro.geometry.scanline import (
    DEFAULT_GRID,
    ScanEdge,
    _emit,
    evenodd,
    merge_trapezoids,
    nonzero,
)
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.vertex_array import snap_stacked, stack_polygons

#: Largest |coordinate| (in database units) the fast kernel accepts.
#: Beyond it ``q`` no longer fits the int64 sort key (and the snapped
#: value itself stops being exactly representable as float64, which the
#: emitted trapezoids rely on), so the caller falls back to the
#: Fraction-based reference engine — a counted event, not a silent one.
COORD_LIMIT = 1 << 53

#: Largest |coordinate| for the single-float fractional key (the
#: original kernel regime, kept unchanged for the dominant case).
_FLOAT_KEY_LIMIT = 1 << 24

#: Largest |coordinate| for pure-int64 key arithmetic
#: (``2*B**2 < 2**63`` requires ``B <= 2**31 - 1``).
_INT64_KEY_LIMIT = (1 << 31) - 1

#: Largest |coordinate| for int64 cross products in crossing detection
#: (``8*B**2 < 2**63`` requires ``B <= 2**30 - 1``; 2**29 keeps a 2x
#: margin).  Above it the pruned candidates use Python-int objects.
_CROSS_INT64_LIMIT = 1 << 29

#: Raw (pre-snap) scaled magnitude above which ``float -> int64`` is
#: undefined behaviour in NumPy; checked on the input floats *before*
#: snapping so oversized inputs fall back instead of wrapping.
_SNAP_SAFE_LIMIT = float(1 << 62)

#: Bits per big-integer fractional digit word (words must fit int64
#: with headroom: ``r << 54`` below ``den < 2**164`` stays a small
#: Python int; each emitted word is ``< 2**54``).
_WORD_BITS = 54

#: Safety valve: if a rational-slab key would need more digit words
#: than this, that slab family is swept by the scalar reference loop
#: (and counted as ``rational_slab`` fallbacks).  Unreachable by the
#: bound in the module docstring (K <= 7).
_MAX_FRACTION_WORDS = 8


@dataclass
class KernelFallbacks:
    """Counters for every way the fast kernel can degrade.

    Attributes:
        coord_limit: sweeps abandoned to the reference engine because a
            coordinate exceeded :data:`COORD_LIMIT` (one count per
            abandoned sweep).
        rational_slab: slabs swept by the scalar ``Fraction`` loop
            because their key needed more than
            :data:`_MAX_FRACTION_WORDS` digit words (one count per
            slab; unreachable by construction, see module docstring).
    """

    coord_limit: int = 0
    rational_slab: int = 0

    def total(self) -> int:
        return self.coord_limit + self.rational_slab

    def copy(self) -> "KernelFallbacks":
        return KernelFallbacks(self.coord_limit, self.rational_slab)

    def add(self, other: "KernelFallbacks") -> None:
        self.coord_limit += other.coord_limit
        self.rational_slab += other.rational_slab


_SCALAR_PREDICATES: Dict[str, Callable[[bool, bool], bool]] = {
    "or": lambda a, b: a or b,
    "and": lambda a, b: a and b,
    "sub": lambda a, b: a and not b,
    "xor": lambda a, b: a != b,
}

_VECTOR_PREDICATES: Dict[str, Callable] = {
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "sub": lambda a, b: a & ~b,
    "xor": lambda a, b: a ^ b,
}


def _fill_vec(rule: str, w: np.ndarray) -> np.ndarray:
    if rule == "nonzero":
        return w != 0
    return (w & 1) == 1


# ---------------------------------------------------------------------------
# Edge table construction
# ---------------------------------------------------------------------------


def _edge_table(
    ints: np.ndarray, offsets: np.ndarray, groups: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Build the canonical scan-edge arrays from stacked snapped rings.

    Mirrors :func:`repro.geometry.scanline.edges_from_rings`: horizontal
    edges are dropped, rings with fewer than 3 vertices are skipped, the
    lower endpoint comes first and ``winding`` is +1 for originally
    upward edges.
    """
    counts = np.diff(offsets)
    total = int(offsets[-1])
    ring_id = np.repeat(np.arange(len(counts)), counts)
    nxt = np.arange(total, dtype=np.int64) + 1
    nonempty = counts > 0
    nxt[offsets[1:][nonempty] - 1] = offsets[:-1][nonempty]
    ax = ints[:, 0]
    ay = ints[:, 1]
    bx = ints[nxt, 0]
    by = ints[nxt, 1]
    keep = (counts >= 3)[ring_id] & (ay != by)
    ax, ay, bx, by = ax[keep], ay[keep], bx[keep], by[keep]
    up = ay < by
    x0 = np.where(up, ax, bx)
    y0 = np.where(up, ay, by)
    x1 = np.where(up, bx, ax)
    y1 = np.where(up, by, ay)
    winding = np.where(up, np.int64(1), np.int64(-1))
    group = groups[ring_id[keep]]
    return x0, y0, x1, y1, winding, group


# ---------------------------------------------------------------------------
# Crossing detection
# ---------------------------------------------------------------------------


#: Candidate edge pairs filtered per vectorized batch.  Bounds the
#: transient memory of crossing detection to a few tens of MB no matter
#: how many edges share a y band; the batches stream, so total work is
#: still one vectorized pass over the candidate set.
_PAIR_CHUNK = 1 << 20


def _iter_range_batches(j_lo: np.ndarray, cnt: np.ndarray, limit: int):
    """Yield ``(source_slice, ii_local, jj_positions)`` batches of the
    ragged candidate ranges ``[j_lo[k], j_lo[k] + cnt[k])``, each batch
    holding at most ``limit`` pairs (a single oversized source still
    yields one batch — ranges are never split)."""
    csum = np.cumsum(cnt)
    n = len(cnt)
    start = 0
    while start < n:
        prev = int(csum[start - 1]) if start else 0
        end = int(np.searchsorted(csum, prev + limit, side="left")) + 1
        end = max(end, start + 1)
        end = min(end, n)
        c = cnt[start:end]
        total = int(csum[end - 1]) - prev
        ii_local = np.repeat(np.arange(start, end, dtype=np.int64), c)
        base = np.concatenate(([0], np.cumsum(c)[:-1]))
        jj = np.arange(total, dtype=np.int64) - np.repeat(base, c)
        jj += np.repeat(j_lo[start:end], c)
        yield ii_local, jj
        start = end


def _strict_crossings(
    x0: np.ndarray,
    y0: np.ndarray,
    x1: np.ndarray,
    y1: np.ndarray,
    wide: bool = False,
) -> Tuple[List[Fraction], np.ndarray]:
    """Exact ys of strictly interior edge/edge crossings.

    Only transversal crossings strictly inside *both* edges can create a
    slab boundary that is not already an edge-endpoint y; collinear
    overlaps and endpoint touches are skipped by construction.  Pair
    candidates come from a y-interval join with two prunes —
    vertical/vertical pairs are parallel and never cross, and x ranges
    must overlap — generated and filtered in bounded batches
    (:data:`_PAIR_CHUNK`) with exact cross products: int64 when
    coordinates stay within :data:`_CROSS_INT64_LIMIT`, Python-int
    objects (``wide=True``) beyond.  The rare survivors are evaluated in
    exact (unbounded) Python integers.

    Returns non-integer crossing ys as reduced fractions plus integer
    crossing ys as an int64 array.
    """
    n = len(x0)
    rational: List[Fraction] = []
    integral: List[int] = []
    if n < 2:
        return rational, np.empty(0, dtype=np.int64)
    slanted = x0 != x1
    if not bool(slanted.any()):
        # Manhattan data: every edge is vertical, crossings impossible.
        return rational, np.empty(0, dtype=np.int64)

    order = np.argsort(y0, kind="stable")
    sx0, sy0 = x0[order], y0[order]
    sx1, sy1 = x1[order], y1[order]
    s_slant = slanted[order]
    xmin = np.minimum(sx0, sx1)
    xmax = np.maximum(sx0, sx1)
    # For sorted position i, candidates are positions j in (i, hi[i]):
    # they start at or after y0[i] and strictly before y1[i].
    hi = np.searchsorted(sy0, sy1, side="left")
    slant_pos = np.nonzero(s_slant)[0]
    # Prefix count of slanted edges, for vertical-vs-slanted ranges.
    lo_s = np.searchsorted(slant_pos, np.arange(n) + 1, side="left")
    hi_s = np.searchsorted(slant_pos, hi, side="left")

    def process(ii: np.ndarray, jj: np.ndarray) -> None:
        ok = (xmax[ii] >= xmin[jj]) & (xmax[jj] >= xmin[ii])
        ii, jj = ii[ok], jj[ok]
        if len(ii) == 0:
            return
        d1x = sx1[ii] - sx0[ii]
        d1y = sy1[ii] - sy0[ii]
        d2x = sx1[jj] - sx0[jj]
        d2y = sy1[jj] - sy0[jj]
        px = sx0[jj] - sx0[ii]
        py = sy0[jj] - sy0[ii]
        if wide:
            # Deltas are exact in int64 (|delta| <= 2B <= 2**54); the
            # cross products below are not — promote to Python ints.
            d1x, d1y = d1x.astype(object), d1y.astype(object)
            d2x, d2y = d2x.astype(object), d2y.astype(object)
            px, py = px.astype(object), py.astype(object)
        denom = d1x * d2y - d1y * d2x
        t_num = px * d2y - py * d2x
        u_num = px * d1y - py * d1x
        sgn = np.sign(denom)
        dn = np.abs(denom)
        tn = t_num * sgn
        un = u_num * sgn
        strict = (denom != 0) & (tn > 0) & (tn < dn) & (un > 0) & (un < dn)
        for k in np.nonzero(strict)[0].tolist():
            # Exact arithmetic in Python ints: the numerator can exceed
            # int64 for large coordinates even under COORD_LIMIT.
            num = (
                int(sy0[ii[k]]) * int(denom[k])
                + int(t_num[k]) * int(d1y[k])
            )
            y = Fraction(num, int(denom[k]))
            if y.denominator == 1:
                integral.append(int(y))
            else:
                rational.append(y)

    idx = np.arange(n, dtype=np.int64)
    # Slanted i against every later overlapping j; vertical i against
    # later overlapping *slanted* j only.
    for i_src, j_lo, j_hi, via_slant in (
        (idx[s_slant], (idx + 1)[s_slant], hi[s_slant], False),
        (idx[~s_slant], lo_s[~s_slant], hi_s[~s_slant], True),
    ):
        cnt = np.maximum(j_hi - j_lo, 0)
        keep = cnt > 0
        i_src, j_lo, cnt = i_src[keep], j_lo[keep], cnt[keep]
        if len(i_src) == 0:
            continue
        for ii_local, jj in _iter_range_batches(j_lo, cnt, _PAIR_CHUNK):
            ii = i_src[ii_local]
            if via_slant:
                jj = slant_pos[jj]
            process(ii, jj)
    return rational, np.asarray(integral, dtype=np.int64)


# ---------------------------------------------------------------------------
# Scalar safety valve for slabs whose keys would not fit
# ---------------------------------------------------------------------------


def _sweep_scalar_slab(
    edges: List[ScanEdge],
    y_lo,
    y_hi,
    predicate: Callable[[bool, bool], bool],
    fill_rule: Callable[[int], bool],
    grid: float,
) -> List[Trapezoid]:
    """Reference inner loop for one slab (exact Fraction arithmetic)."""
    y_mid = (Fraction(y_lo) + Fraction(y_hi)) / 2
    keyed = sorted(((e.x_at(y_mid), e) for e in edges), key=lambda t: t[0])
    out: List[Trapezoid] = []
    winding_a = 0
    winding_b = 0
    inside = False
    open_edge: Optional[ScanEdge] = None
    k = 0
    n = len(keyed)
    while k < n:
        x_here = keyed[k][0]
        first_edge = keyed[k][1]
        while k < n and keyed[k][0] == x_here:
            e = keyed[k][1]
            if e.group == 0:
                winding_a += e.winding
            else:
                winding_b += e.winding
            k += 1
        now_inside = predicate(fill_rule(winding_a), fill_rule(winding_b))
        if now_inside and not inside:
            open_edge = first_edge
        elif not now_inside and inside:
            close_edge = keyed[k - 1][1]
            trap = _emit(open_edge, close_edge, Fraction(y_lo), Fraction(y_hi), grid)
            if trap is not None:
                out.append(trap)
            open_edge = None
        inside = now_inside
    return out


# ---------------------------------------------------------------------------
# Order-embedding keys
# ---------------------------------------------------------------------------


def _keys_float(num: np.ndarray, dy: np.ndarray) -> Tuple[np.ndarray, ...]:
    """``(q, float64(r/dy))`` — exact for ``den <= 2**25`` (see docstring)."""
    q = num // dy
    r = num - q * dy
    f = r.astype(np.float64) / dy.astype(np.float64)
    return q, f


def _keys_int64(num: np.ndarray, dy: np.ndarray) -> Tuple[np.ndarray, ...]:
    """``(q, w1, w2, w3)`` with three 31-bit fraction digit words —
    exact for ``dy < 2**32`` (93 fractional bits >= 2 * bits(dy))."""
    q = num // dy
    r = num - q * dy
    words = [q]
    shift = np.int64(31)
    for _ in range(3):
        t = r << shift
        w = t // dy
        r = t - w * dy
        words.append(w)
    return tuple(words)


def _keys_object(
    num: np.ndarray, den: np.ndarray, den_bits: int
) -> Tuple[np.ndarray, ...]:
    """``(q, w1, .., wK)`` over Python-int arrays, K adaptive so that
    ``54*K >= 2 * den_bits`` — exact for denominators of any size.

    ``q`` and every digit word fit int64 (``|q| <= COORD_LIMIT + 1``,
    ``w < 2**54``), so the emitted key arrays are plain int64 and the
    downstream lexsort never touches an object."""
    q = num // den
    r = num - q * den
    k_words = -(-2 * den_bits // _WORD_BITS)
    words = [q.astype(np.int64)]
    for _ in range(k_words):
        t = r << _WORD_BITS
        w = t // den
        r = t - w * den
        words.append(w.astype(np.int64))
    return tuple(words)


def _lex_compare(
    keys: Tuple[np.ndarray, ...], a_idx: np.ndarray, b_idx: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized lexicographic ``(a < b, a == b)`` over key rows."""
    lt = np.zeros(len(a_idx), dtype=bool)
    eq = np.ones(len(a_idx), dtype=bool)
    for k in keys:
        ka = k[a_idx]
        kb = k[b_idx]
        lt |= eq & (ka < kb)
        eq &= ka == kb
    return lt, eq


def _div_rows(
    num: np.ndarray, den: np.ndarray, idx: np.ndarray, exact: bool
) -> np.ndarray:
    """Correctly rounded ``num[idx] / den[idx]`` as float64.

    ``exact=False`` divides float64 operands (valid when both are
    exactly representable); ``exact=True`` divides Python ints, whose
    true division is correctly rounded at any magnitude."""
    n = num[idx]
    d = den[idx]
    if not exact:
        return n.astype(np.float64) / d.astype(np.float64)
    if n.dtype != object:
        n = n.astype(object)
    if d.dtype != object:
        d = d.astype(object)
    return (n / d).astype(np.float64)


# ---------------------------------------------------------------------------
# The vectorized sweep
# ---------------------------------------------------------------------------


def _sweep_block(
    e: np.ndarray,
    s: np.ndarray,
    winding: np.ndarray,
    group: np.ndarray,
    operation: str,
    fill_rule: str,
    grid: float,
    keys_lo: Tuple[np.ndarray, ...],
    keys_hi: Tuple[np.ndarray, ...],
    num_lo: np.ndarray,
    den_lo: np.ndarray,
    num_hi: np.ndarray,
    den_hi: np.ndarray,
    b_float: np.ndarray,
    exact_div: bool,
) -> Tuple[np.ndarray, np.ndarray]:
    """Sweep one family of slabs given exact per-boundary order keys.

    ``(e, s)`` are the (edge, slab) incidence rows of the family;
    ``keys_lo``/``keys_hi`` are the order-embedding key arrays for x at
    the lower/upper boundary and ``num/den`` the exact rational x used
    for emission.  Returns ``(slab_ids, rows)`` with one ``(6,)``
    float64 trapezoid row per kept interior interval, in slab order.
    """
    order = np.lexsort(
        tuple(reversed(keys_hi)) + tuple(reversed(keys_lo)) + (s,)
    )
    e = e[order]
    s = s[order]
    keys_lo = tuple(k[order] for k in keys_lo)
    keys_hi = tuple(k[order] for k in keys_hi)
    num_lo = num_lo[order]
    num_hi = num_hi[order]
    den_lo = den_lo[order]
    den_hi = den_hi[order]

    n = len(e)
    new_slab = np.ones(n, dtype=bool)
    new_slab[1:] = s[1:] != s[:-1]
    new_group = new_slab.copy()
    for k in keys_lo + keys_hi:
        new_group[1:] |= k[1:] != k[:-1]

    w = winding[e]
    g = group[e]
    wa = np.cumsum(np.where(g == 0, w, 0))
    wb = np.cumsum(np.where(g == 1, w, 0))
    slab_start = np.nonzero(new_slab)[0]
    slab_len = np.diff(np.concatenate((slab_start, [n])))
    base_a = np.where(slab_start > 0, wa[slab_start - 1], 0)
    base_b = np.where(slab_start > 0, wb[slab_start - 1], 0)
    wa = wa - np.repeat(base_a, slab_len)
    wb = wb - np.repeat(base_b, slab_len)

    g_start = np.nonzero(new_group)[0]
    g_end = np.concatenate((g_start[1:] - 1, [n - 1]))
    inside = _VECTOR_PREDICATES[operation](
        _fill_vec(fill_rule, wa[g_end]), _fill_vec(fill_rule, wb[g_end])
    )
    g_slab = s[g_end]
    prev = np.empty_like(inside)
    prev[0] = False
    prev[1:] = inside[:-1]
    first_of_slab = np.ones(len(g_end), dtype=bool)
    first_of_slab[1:] = g_slab[1:] != g_slab[:-1]
    prev[first_of_slab] = False
    opens = inside & ~prev
    closes = prev & ~inside
    left = g_start[opens]
    right = g_end[closes]
    if len(left) != len(right):  # pragma: no cover - invariant guard
        raise AssertionError("unbalanced interior transitions")
    if not len(left):
        return np.empty(0, dtype=np.int64), np.empty((0, 6), dtype=np.float64)

    # Exact per-boundary comparisons right-vs-left via the order keys.
    lt0, eq0 = _lex_compare(keys_lo, right, left)
    lt1, eq1 = _lex_compare(keys_hi, right, left)
    drop = (lt0 | eq0) & (lt1 | eq1)

    xl0 = _div_rows(num_lo, den_lo, left, exact_div)
    xl1 = _div_rows(num_hi, den_hi, left, exact_div)
    xr0 = _div_rows(num_lo, den_lo, right, exact_div)
    xr1 = _div_rows(num_hi, den_hi, right, exact_div)
    # Guard against coincident-edge inversions, as the reference does
    # (exact max, applied to the floats).
    xr0 = np.where(lt0, xl0, xr0)
    xr1 = np.where(lt1, xl1, xr1)
    t_all = s[left]
    ylo_f = b_float[t_all] * grid
    yhi_f = b_float[t_all + 1] * grid
    # A slab of sub-ulp exact height renders as zero height in layout
    # units and carries no area — drop it, as the reference does.
    keep = ~drop & (yhi_f > ylo_f)
    t_slab = t_all[keep]
    rows = np.column_stack(
        (
            ylo_f[keep],
            yhi_f[keep],
            xl0[keep] * grid,
            xr0[keep] * grid,
            xl1[keep] * grid,
            xr1[keep] * grid,
        )
    )
    return t_slab, rows


def sweep_trapezoids_fast(
    polys_a: Sequence[Polygon],
    polys_b: Sequence[Polygon],
    operation: str,
    fill_rule: str = "nonzero",
    grid: float = DEFAULT_GRID,
    merge: bool = True,
    fallbacks: Optional[KernelFallbacks] = None,
) -> Optional[List[Trapezoid]]:
    """Vectorized boolean sweep; bit-identical to the reference engine.

    Returns ``None`` when the snapped coordinates exceed
    :data:`COORD_LIMIT` — the caller is expected to fall back to
    :func:`repro.geometry.scanline.sweep_trapezoids`.  When
    ``fallbacks`` is given, every degradation (the ``None`` return, or
    a slab swept by the scalar safety valve) increments its counters.
    """
    polys_a = list(polys_a)
    polys_b = list(polys_b)
    coords_a, off_a = stack_polygons(polys_a)
    coords_b, off_b = stack_polygons(polys_b)
    peak = 0.0
    if coords_a.size:
        peak = float(np.abs(coords_a).max())
    if coords_b.size:
        peak = max(peak, float(np.abs(coords_b).max()))
    if not (peak / grid < _SNAP_SAFE_LIMIT):
        # Snapping would cast out-of-range floats to int64 (undefined);
        # such inputs are far beyond COORD_LIMIT regardless.  The check
        # also catches non-finite coordinates.
        if fallbacks is not None:
            fallbacks.coord_limit += 1
        return None
    ints_a, off_a = snap_stacked(coords_a, off_a, grid)
    ints_b, off_b = snap_stacked(coords_b, off_b, grid)
    ints = np.concatenate([ints_a, ints_b])
    coord_max = int(np.abs(ints).max()) if len(ints) else 0
    if coord_max > COORD_LIMIT:
        if fallbacks is not None:
            fallbacks.coord_limit += 1
        return None
    offsets = np.concatenate([off_a, off_a[-1] + off_b[1:]])
    groups = np.concatenate(
        [
            np.zeros(len(off_a) - 1, dtype=np.int64),
            np.ones(len(off_b) - 1, dtype=np.int64),
        ]
    )
    x0, y0, x1, y1, winding, group = _edge_table(ints, offsets, groups)
    if len(x0) == 0:
        return []

    rational_ys, int_cross = _strict_crossings(
        x0, y0, x1, y1, wide=coord_max > _CROSS_INT64_LIMIT
    )

    # -- slab boundaries ---------------------------------------------------
    int_b = np.unique(np.concatenate([y0, y1, int_cross]))
    rats = sorted(set(rational_ys))
    n_int = len(int_b)
    n_rat = len(rats)
    n_bounds = n_int + n_rat
    if n_bounds < 2:
        return []
    if n_rat:
        rat_floor = np.asarray(
            [f.numerator // f.denominator for f in rats], dtype=np.int64
        )
        # Exact merge positions: a non-integer rational r precedes an
        # integer y iff floor(r) < y, and follows it iff floor(r) >= y.
        pos_int = np.arange(n_int) + np.searchsorted(rat_floor, int_b, "left")
        pos_rat = np.arange(n_rat) + np.searchsorted(int_b, rat_floor, "right")
        b_val = np.zeros(n_bounds, dtype=np.int64)
        b_isint = np.zeros(n_bounds, dtype=bool)
        b_val[pos_int] = int_b
        b_isint[pos_int] = True
        # Exact rational value bn/bd of every boundary, plus its
        # correctly rounded float (== float(Fraction(bn, bd))).
        b_num = np.empty(n_bounds, dtype=object)
        b_den = np.empty(n_bounds, dtype=object)
        b_float = np.empty(n_bounds, dtype=np.float64)
        b_float[pos_int] = int_b.astype(np.float64)
        for k in range(n_int):
            i = pos_int[k]
            b_num[i] = int(int_b[k])
            b_den[i] = 1
        for k in range(n_rat):
            i = pos_rat[k]
            b_num[i] = rats[k].numerator
            b_den[i] = rats[k].denominator
            b_float[i] = rats[k].numerator / rats[k].denominator
    else:
        pos_int = np.arange(n_int)
        b_val = int_b
        b_isint = np.ones(n_bounds, dtype=bool)
        b_num = b_den = None
        b_float = int_b.astype(np.float64)

    # Edge -> slab range: spans slabs [index(y0), index(y1)).
    s0 = pos_int[np.searchsorted(int_b, y0)]
    s1 = pos_int[np.searchsorted(int_b, y1)]

    # -- incidences: one row per (slab, spanning edge) ---------------------
    span = s1 - s0
    m = int(span.sum())
    inc_edge = np.repeat(np.arange(len(x0), dtype=np.int64), span)
    base = np.concatenate(([0], np.cumsum(span)[:-1]))
    inc_slab = np.arange(m, dtype=np.int64) - np.repeat(base, span)
    inc_slab += np.repeat(s0, span)

    # Slabs with a rational boundary need big-integer keys; split them
    # into their own sweep family (slabs are never shared, so the two
    # families are independent and reassemble by slab id).
    e_rat = s_rat = None
    if n_rat:
        rational_slabs = ~(b_isint[:-1] & b_isint[1:])
        rmask = rational_slabs[inc_slab]
        e_rat = inc_edge[rmask]
        s_rat = inc_slab[rmask]
        inc_edge = inc_edge[~rmask]
        inc_slab = inc_slab[~rmask]

    blocks: List[Tuple[np.ndarray, np.ndarray]] = []
    scalar_traps: Dict[int, List[Trapezoid]] = {}

    # -- integer-bounded slabs ---------------------------------------------
    if len(inc_edge):
        e = inc_edge
        s = inc_slab
        dy = y1[e] - y0[e]
        dx = x1[e] - x0[e]
        lo = b_val[s]
        hi = b_val[s + 1]
        if coord_max <= _INT64_KEY_LIMIT:
            # Exact in int64: |num| <= 2*B**2 < 2**63 (intermediate
            # products may wrap, but int64 arithmetic is modular and
            # the true sum is in range, so the result is exact).
            num_lo = x0[e] * dy + (lo - y0[e]) * dx
            num_hi = x0[e] * dy + (hi - y0[e]) * dx
            if coord_max <= _FLOAT_KEY_LIMIT:
                keys_lo = _keys_float(num_lo, dy)
                keys_hi = _keys_float(num_hi, dy)
                exact_div = False
            else:
                keys_lo = _keys_int64(num_lo, dy)
                keys_hi = _keys_int64(num_hi, dy)
                exact_div = True
            den_lo = den_hi = dy
        else:
            dy_o = dy.astype(object)
            dx_o = dx.astype(object)
            x0_o = x0[e].astype(object)
            num_lo = x0_o * dy_o + (lo - y0[e]).astype(object) * dx_o
            num_hi = x0_o * dy_o + (hi - y0[e]).astype(object) * dx_o
            den_lo = den_hi = dy_o
            bits = int(dy.max()).bit_length()
            keys_lo = _keys_object(num_lo, dy_o, bits)
            keys_hi = _keys_object(num_hi, dy_o, bits)
            exact_div = True
        blocks.append(
            _sweep_block(
                e, s, winding, group, operation, fill_rule, grid,
                keys_lo, keys_hi, num_lo, den_lo, num_hi, den_hi,
                b_float, exact_div,
            )
        )

    # -- rational-bounded slabs --------------------------------------------
    if e_rat is not None and len(e_rat):
        e = e_rat
        s = s_rat
        dy_o = (y1[e] - y0[e]).astype(object)
        dx_o = (x1[e] - x0[e]).astype(object)
        x0_o = x0[e].astype(object)
        y0_o = y0[e].astype(object)
        bn_lo = b_num[s]
        bd_lo = b_den[s]
        bn_hi = b_num[s + 1]
        bd_hi = b_den[s + 1]
        num_lo = x0_o * dy_o * bd_lo + (bn_lo - y0_o * bd_lo) * dx_o
        num_hi = x0_o * dy_o * bd_hi + (bn_hi - y0_o * bd_hi) * dx_o
        den_lo = dy_o * bd_lo
        den_hi = dy_o * bd_hi
        bits = int(max(den_lo.max(), den_hi.max())).bit_length()
        words = -(-2 * bits // _WORD_BITS)
        if words <= _MAX_FRACTION_WORDS:
            keys_lo = _keys_object(num_lo, den_lo, bits)
            keys_hi = _keys_object(num_hi, den_hi, bits)
            blocks.append(
                _sweep_block(
                    e, s, winding, group, operation, fill_rule, grid,
                    keys_lo, keys_hi, num_lo, den_lo, num_hi, den_hi,
                    b_float, True,
                )
            )
        else:
            # Safety valve (unreachable by the docstring bound): sweep
            # these slabs with the reference scalar loop, counted.
            predicate = _SCALAR_PREDICATES[operation]
            rule = nonzero if fill_rule == "nonzero" else evenodd
            order_sc = np.argsort(s, kind="stable")
            sc_edge = e[order_sc]
            sc_slab = s[order_sc]
            starts = np.nonzero(
                np.concatenate(([True], sc_slab[1:] != sc_slab[:-1]))
            )[0]
            ends = np.concatenate((starts[1:], [len(sc_slab)]))
            if fallbacks is not None:
                fallbacks.rational_slab += len(starts)
            for a, b in zip(starts.tolist(), ends.tolist()):
                si = int(sc_slab[a])
                edges = [
                    ScanEdge(
                        int(x0[ed]), int(y0[ed]), int(x1[ed]), int(y1[ed]),
                        int(winding[ed]), int(group[ed]),
                    )
                    for ed in sc_edge[a:b].tolist()
                ]
                scalar_traps[si] = _sweep_scalar_slab(
                    edges,
                    Fraction(b_num[si], b_den[si]),
                    Fraction(b_num[si + 1], b_den[si + 1]),
                    predicate,
                    rule,
                    grid,
                )

    # -- assemble in slab order -------------------------------------------
    if blocks:
        all_ids = np.concatenate([b[0] for b in blocks])
        all_rows = np.concatenate([b[1] for b in blocks])
        if len(blocks) > 1:
            order_out = np.argsort(all_ids, kind="stable")
            all_ids = all_ids[order_out]
            all_rows = all_rows[order_out]
    else:
        all_ids = np.empty(0, dtype=np.int64)
        all_rows = np.empty((0, 6), dtype=np.float64)

    result: List[Trapezoid] = []
    if scalar_traps:
        ids_list = all_ids.tolist()
        rows_list = all_rows.tolist()
        ptr = 0
        for si in sorted(set(ids_list) | set(scalar_traps)):
            if si in scalar_traps:
                result.extend(scalar_traps[si])
            while ptr < len(ids_list) and ids_list[ptr] == si:
                result.append(Trapezoid(*rows_list[ptr]))
                ptr += 1
    else:
        result = [Trapezoid(*row) for row in all_rows.tolist()]
    if merge:
        result = merge_trapezoids(result)
    return result

"""Vectorized exact-integer scanline kernel.

A NumPy reimplementation of :mod:`repro.geometry.scanline` that produces
**bit-identical** trapezoids without creating a single
:class:`fractions.Fraction` in the hot loop.  The reference engine stays
as the oracle (``kernel="exact"`` on
:func:`repro.geometry.boolean.boolean_trapezoids`); this module is the
default (``kernel="fast"``).

Why exactness survives vectorization
------------------------------------
All coordinates are snapped to an int64 grid and bounded by
:data:`COORD_LIMIT` (= 2**24 database units, 16.7 mm at a 1 nm grid —
checked up front, with transparent fallback to the reference engine
beyond it).  Under that bound:

* Every x coordinate of a slab-spanning edge at an *integer* slab
  boundary ``y`` is the rational ``num/den`` with ``num = x0*dy +
  (y - y0)*dx`` (|num| < 6·B² < 2**53) and ``den = dy`` (< 2**25), so
  ``float64(num)/float64(den)`` is the correctly rounded quotient —
  exactly ``float(Fraction(num, den))``.
* Writing ``num/den`` as ``q + r/den`` (floored division), the pair
  ``(q, float64(r/den))`` is an exact order embedding: two distinct
  reduced fractions with denominators < 2**26 differ by at least
  2**-50, which is more than 4 ulps of any value in [0, 1), so their
  correctly rounded floats differ whenever the rationals do.  Sorting
  and equality-folding on ``(q, f)`` is therefore *exact* — no symbolic
  arithmetic needed.
* Within a slab no two active edges cross (that is what slab boundaries
  are for), so the reference order "by x at the slab's midline" equals
  the lexicographic order by (x at bottom, x at top), and edges that
  compare equal are collinear through the whole slab — the reference's
  fold-equal-x transition semantics carry over unchanged.

Edge/edge crossings are *detected* with vectorized integer cross
products (bbox-pruned, strictly interior crossings only — crossings at
edge endpoints contribute no new slab boundary) and the few survivors
are evaluated with exact Python integers.  Slabs bounded by such
rational crossing ys are swept with the reference scalar code
(:class:`~repro.geometry.scanline.ScanEdge` + ``Fraction``), keeping the
whole engine exact; on union-of-disjoint-polygon workloads — the normal
fracture case — that path never runs.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.geometry.polygon import Polygon
from repro.geometry.scanline import (
    DEFAULT_GRID,
    ScanEdge,
    _emit,
    evenodd,
    merge_trapezoids,
    nonzero,
)
from repro.geometry.trapezoid import Trapezoid
from repro.geometry.vertex_array import snap_rings

#: Largest |coordinate| (in database units) the fast kernel accepts.
#: Beyond it the int64/float64 exactness arguments above break down and
#: the caller falls back to the Fraction-based reference engine.
COORD_LIMIT = 1 << 24

_SCALAR_PREDICATES: Dict[str, Callable[[bool, bool], bool]] = {
    "or": lambda a, b: a or b,
    "and": lambda a, b: a and b,
    "sub": lambda a, b: a and not b,
    "xor": lambda a, b: a != b,
}

_VECTOR_PREDICATES: Dict[str, Callable] = {
    "or": lambda a, b: a | b,
    "and": lambda a, b: a & b,
    "sub": lambda a, b: a & ~b,
    "xor": lambda a, b: a ^ b,
}


def _fill_vec(rule: str, w: np.ndarray) -> np.ndarray:
    if rule == "nonzero":
        return w != 0
    return (w & 1) == 1


# ---------------------------------------------------------------------------
# Edge table construction
# ---------------------------------------------------------------------------


def _edge_table(
    ints: np.ndarray, offsets: np.ndarray, groups: np.ndarray
) -> Tuple[np.ndarray, ...]:
    """Build the canonical scan-edge arrays from stacked snapped rings.

    Mirrors :func:`repro.geometry.scanline.edges_from_rings`: horizontal
    edges are dropped, rings with fewer than 3 vertices are skipped, the
    lower endpoint comes first and ``winding`` is +1 for originally
    upward edges.
    """
    counts = np.diff(offsets)
    total = int(offsets[-1])
    ring_id = np.repeat(np.arange(len(counts)), counts)
    nxt = np.arange(total, dtype=np.int64) + 1
    nonempty = counts > 0
    nxt[offsets[1:][nonempty] - 1] = offsets[:-1][nonempty]
    ax = ints[:, 0]
    ay = ints[:, 1]
    bx = ints[nxt, 0]
    by = ints[nxt, 1]
    keep = (counts >= 3)[ring_id] & (ay != by)
    ax, ay, bx, by = ax[keep], ay[keep], bx[keep], by[keep]
    up = ay < by
    x0 = np.where(up, ax, bx)
    y0 = np.where(up, ay, by)
    x1 = np.where(up, bx, ax)
    y1 = np.where(up, by, ay)
    winding = np.where(up, np.int64(1), np.int64(-1))
    group = groups[ring_id[keep]]
    return x0, y0, x1, y1, winding, group


# ---------------------------------------------------------------------------
# Crossing detection
# ---------------------------------------------------------------------------


#: Candidate edge pairs filtered per vectorized batch.  Bounds the
#: transient memory of crossing detection to a few tens of MB no matter
#: how many edges share a y band; the batches stream, so total work is
#: still one vectorized pass over the candidate set.
_PAIR_CHUNK = 1 << 20


def _iter_range_batches(j_lo: np.ndarray, cnt: np.ndarray, limit: int):
    """Yield ``(source_slice, ii_local, jj_positions)`` batches of the
    ragged candidate ranges ``[j_lo[k], j_lo[k] + cnt[k])``, each batch
    holding at most ``limit`` pairs (a single oversized source still
    yields one batch — ranges are never split)."""
    csum = np.cumsum(cnt)
    n = len(cnt)
    start = 0
    while start < n:
        prev = int(csum[start - 1]) if start else 0
        end = int(np.searchsorted(csum, prev + limit, side="left")) + 1
        end = max(end, start + 1)
        end = min(end, n)
        c = cnt[start:end]
        total = int(csum[end - 1]) - prev
        ii_local = np.repeat(np.arange(start, end, dtype=np.int64), c)
        base = np.concatenate(([0], np.cumsum(c)[:-1]))
        jj = np.arange(total, dtype=np.int64) - np.repeat(base, c)
        jj += np.repeat(j_lo[start:end], c)
        yield ii_local, jj
        start = end


def _strict_crossings(
    x0: np.ndarray, y0: np.ndarray, x1: np.ndarray, y1: np.ndarray
) -> Tuple[List[Fraction], np.ndarray]:
    """Exact ys of strictly interior edge/edge crossings.

    Only transversal crossings strictly inside *both* edges can create a
    slab boundary that is not already an edge-endpoint y; collinear
    overlaps and endpoint touches are skipped by construction.  Pair
    candidates come from a y-interval join with two prunes —
    vertical/vertical pairs are parallel and never cross, and x ranges
    must overlap — generated and filtered in bounded batches
    (:data:`_PAIR_CHUNK`) with int64 cross products; the rare survivors
    are evaluated in exact (unbounded) Python integers.

    Returns non-integer crossing ys as reduced fractions plus integer
    crossing ys as an int64 array.
    """
    n = len(x0)
    rational: List[Fraction] = []
    integral: List[int] = []
    if n < 2:
        return rational, np.empty(0, dtype=np.int64)
    slanted = x0 != x1
    if not bool(slanted.any()):
        # Manhattan data: every edge is vertical, crossings impossible.
        return rational, np.empty(0, dtype=np.int64)

    order = np.argsort(y0, kind="stable")
    sx0, sy0 = x0[order], y0[order]
    sx1, sy1 = x1[order], y1[order]
    s_slant = slanted[order]
    xmin = np.minimum(sx0, sx1)
    xmax = np.maximum(sx0, sx1)
    # For sorted position i, candidates are positions j in (i, hi[i]):
    # they start at or after y0[i] and strictly before y1[i].
    hi = np.searchsorted(sy0, sy1, side="left")
    slant_pos = np.nonzero(s_slant)[0]
    # Prefix count of slanted edges, for vertical-vs-slanted ranges.
    lo_s = np.searchsorted(slant_pos, np.arange(n) + 1, side="left")
    hi_s = np.searchsorted(slant_pos, hi, side="left")

    def process(ii: np.ndarray, jj: np.ndarray) -> None:
        ok = (xmax[ii] >= xmin[jj]) & (xmax[jj] >= xmin[ii])
        ii, jj = ii[ok], jj[ok]
        if len(ii) == 0:
            return
        d1x = sx1[ii] - sx0[ii]
        d1y = sy1[ii] - sy0[ii]
        d2x = sx1[jj] - sx0[jj]
        d2y = sy1[jj] - sy0[jj]
        denom = d1x * d2y - d1y * d2x
        px = sx0[jj] - sx0[ii]
        py = sy0[jj] - sy0[ii]
        t_num = px * d2y - py * d2x
        u_num = px * d1y - py * d1x
        sgn = np.sign(denom)
        dn = np.abs(denom)
        tn = t_num * sgn
        un = u_num * sgn
        strict = (denom != 0) & (tn > 0) & (tn < dn) & (un > 0) & (un < dn)
        for k in np.nonzero(strict)[0].tolist():
            # Exact arithmetic in Python ints: the numerator can exceed
            # int64 for large coordinates even under COORD_LIMIT.
            num = (
                int(sy0[ii[k]]) * int(denom[k])
                + int(t_num[k]) * int(d1y[k])
            )
            y = Fraction(num, int(denom[k]))
            if y.denominator == 1:
                integral.append(int(y))
            else:
                rational.append(y)

    idx = np.arange(n, dtype=np.int64)
    # Slanted i against every later overlapping j; vertical i against
    # later overlapping *slanted* j only.
    for i_src, j_lo, j_hi, via_slant in (
        (idx[s_slant], (idx + 1)[s_slant], hi[s_slant], False),
        (idx[~s_slant], lo_s[~s_slant], hi_s[~s_slant], True),
    ):
        cnt = np.maximum(j_hi - j_lo, 0)
        keep = cnt > 0
        i_src, j_lo, cnt = i_src[keep], j_lo[keep], cnt[keep]
        if len(i_src) == 0:
            continue
        for ii_local, jj in _iter_range_batches(j_lo, cnt, _PAIR_CHUNK):
            ii = i_src[ii_local]
            if via_slant:
                jj = slant_pos[jj]
            process(ii, jj)
    return rational, np.asarray(integral, dtype=np.int64)


# ---------------------------------------------------------------------------
# Scalar fallback for slabs bounded by rational (crossing) ys
# ---------------------------------------------------------------------------


def _sweep_scalar_slab(
    edges: List[ScanEdge],
    y_lo,
    y_hi,
    predicate: Callable[[bool, bool], bool],
    fill_rule: Callable[[int], bool],
    grid: float,
) -> List[Trapezoid]:
    """Reference inner loop for one slab (exact Fraction arithmetic)."""
    y_mid = (Fraction(y_lo) + Fraction(y_hi)) / 2
    keyed = sorted(((e.x_at(y_mid), e) for e in edges), key=lambda t: t[0])
    out: List[Trapezoid] = []
    winding_a = 0
    winding_b = 0
    inside = False
    open_edge: Optional[ScanEdge] = None
    k = 0
    n = len(keyed)
    while k < n:
        x_here = keyed[k][0]
        first_edge = keyed[k][1]
        while k < n and keyed[k][0] == x_here:
            e = keyed[k][1]
            if e.group == 0:
                winding_a += e.winding
            else:
                winding_b += e.winding
            k += 1
        now_inside = predicate(fill_rule(winding_a), fill_rule(winding_b))
        if now_inside and not inside:
            open_edge = first_edge
        elif not now_inside and inside:
            close_edge = keyed[k - 1][1]
            trap = _emit(open_edge, close_edge, Fraction(y_lo), Fraction(y_hi), grid)
            if trap is not None:
                out.append(trap)
            open_edge = None
        inside = now_inside
    return out


# ---------------------------------------------------------------------------
# The vectorized sweep
# ---------------------------------------------------------------------------


def sweep_trapezoids_fast(
    polys_a: Sequence[Polygon],
    polys_b: Sequence[Polygon],
    operation: str,
    fill_rule: str = "nonzero",
    grid: float = DEFAULT_GRID,
    merge: bool = True,
) -> Optional[List[Trapezoid]]:
    """Vectorized boolean sweep; bit-identical to the reference engine.

    Returns ``None`` when the snapped coordinates exceed
    :data:`COORD_LIMIT` — the caller is expected to fall back to
    :func:`repro.geometry.scanline.sweep_trapezoids`.
    """
    polys_a = list(polys_a)
    polys_b = list(polys_b)
    ints_a, off_a = snap_rings(polys_a, grid)
    ints_b, off_b = snap_rings(polys_b, grid)
    ints = np.concatenate([ints_a, ints_b])
    if len(ints) and int(np.abs(ints).max()) > COORD_LIMIT:
        return None
    offsets = np.concatenate([off_a, off_a[-1] + off_b[1:]])
    groups = np.concatenate(
        [
            np.zeros(len(off_a) - 1, dtype=np.int64),
            np.ones(len(off_b) - 1, dtype=np.int64),
        ]
    )
    x0, y0, x1, y1, winding, group = _edge_table(ints, offsets, groups)
    if len(x0) == 0:
        return []

    rational_ys, int_cross = _strict_crossings(x0, y0, x1, y1)

    # -- slab boundaries ---------------------------------------------------
    int_b = np.unique(np.concatenate([y0, y1, int_cross]))
    rats = sorted(set(rational_ys))
    n_int = len(int_b)
    n_rat = len(rats)
    n_bounds = n_int + n_rat
    if n_bounds < 2:
        return []
    if n_rat:
        rat_floor = np.asarray(
            [f.numerator // f.denominator for f in rats], dtype=np.int64
        )
        # Exact merge positions: a non-integer rational r precedes an
        # integer y iff floor(r) < y, and follows it iff floor(r) >= y.
        pos_int = np.arange(n_int) + np.searchsorted(rat_floor, int_b, "left")
        pos_rat = np.arange(n_rat) + np.searchsorted(int_b, rat_floor, "right")
        b_val = np.zeros(n_bounds, dtype=np.int64)
        b_isint = np.zeros(n_bounds, dtype=bool)
        b_val[pos_int] = int_b
        b_isint[pos_int] = True
        b_exact: List = [None] * n_bounds
        for k in range(n_int):
            b_exact[pos_int[k]] = int(int_b[k])
        for k in range(n_rat):
            b_exact[pos_rat[k]] = rats[k]
    else:
        pos_int = np.arange(n_int)
        b_val = int_b
        b_isint = np.ones(n_bounds, dtype=bool)
        b_exact = None

    # Edge -> slab range: spans slabs [index(y0), index(y1)).
    s0 = pos_int[np.searchsorted(int_b, y0)]
    s1 = pos_int[np.searchsorted(int_b, y1)]

    # A slab needs the scalar path when either boundary is rational.
    scalar_slabs = ~(b_isint[:-1] & b_isint[1:])

    # -- incidences: one row per (slab, spanning edge) ---------------------
    span = s1 - s0
    m = int(span.sum())
    inc_edge = np.repeat(np.arange(len(x0), dtype=np.int64), span)
    base = np.concatenate(([0], np.cumsum(span)[:-1]))
    inc_slab = np.arange(m, dtype=np.int64) - np.repeat(base, span)
    inc_slab += np.repeat(s0, span)

    scalar_traps: Dict[int, List[Trapezoid]] = {}
    if n_rat:
        sc_mask = scalar_slabs[inc_slab]
        sc_edge = inc_edge[sc_mask]
        sc_slab = inc_slab[sc_mask]
        inc_edge = inc_edge[~sc_mask]
        inc_slab = inc_slab[~sc_mask]
        predicate = _SCALAR_PREDICATES[operation]
        rule = nonzero if fill_rule == "nonzero" else evenodd
        order_sc = np.argsort(sc_slab, kind="stable")
        sc_edge = sc_edge[order_sc]
        sc_slab = sc_slab[order_sc]
        starts = np.nonzero(
            np.concatenate(([True], sc_slab[1:] != sc_slab[:-1]))
        )[0]
        ends = np.concatenate((starts[1:], [len(sc_slab)]))
        for a, b in zip(starts.tolist(), ends.tolist()):
            si = int(sc_slab[a])
            edges = [
                ScanEdge(
                    int(x0[e]), int(y0[e]), int(x1[e]), int(y1[e]),
                    int(winding[e]), int(group[e]),
                )
                for e in sc_edge[a:b].tolist()
            ]
            scalar_traps[si] = _sweep_scalar_slab(
                edges, b_exact[si], b_exact[si + 1], predicate, rule, grid
            )

    # -- vectorized slabs --------------------------------------------------
    vec_cols: Optional[Tuple[np.ndarray, ...]] = None
    if len(inc_edge):
        e = inc_edge
        s = inc_slab
        dy = y1[e] - y0[e]
        dx = x1[e] - x0[e]
        lo = b_val[s]
        hi = b_val[s + 1]
        num_lo = x0[e] * dy + (lo - y0[e]) * dx
        num_hi = x0[e] * dy + (hi - y0[e]) * dx
        q_lo = num_lo // dy
        r_lo = num_lo - q_lo * dy
        q_hi = num_hi // dy
        r_hi = num_hi - q_hi * dy
        dy_f = dy.astype(np.float64)
        f_lo = r_lo.astype(np.float64) / dy_f
        f_hi = r_hi.astype(np.float64) / dy_f

        order = np.lexsort((f_hi, q_hi, f_lo, q_lo, s))
        e = e[order]
        s = s[order]
        q_lo, f_lo = q_lo[order], f_lo[order]
        q_hi, f_hi = q_hi[order], f_hi[order]
        num_lo, num_hi, dy_f = num_lo[order], num_hi[order], dy_f[order]

        new_slab = np.ones(len(e), dtype=bool)
        new_slab[1:] = s[1:] != s[:-1]
        new_group = new_slab.copy()
        new_group[1:] |= (
            (q_lo[1:] != q_lo[:-1])
            | (f_lo[1:] != f_lo[:-1])
            | (q_hi[1:] != q_hi[:-1])
            | (f_hi[1:] != f_hi[:-1])
        )

        w = winding[e]
        g = group[e]
        wa = np.cumsum(np.where(g == 0, w, 0))
        wb = np.cumsum(np.where(g == 1, w, 0))
        slab_start = np.nonzero(new_slab)[0]
        slab_len = np.diff(np.concatenate((slab_start, [len(e)])))
        base_a = np.where(slab_start > 0, wa[slab_start - 1], 0)
        base_b = np.where(slab_start > 0, wb[slab_start - 1], 0)
        wa = wa - np.repeat(base_a, slab_len)
        wb = wb - np.repeat(base_b, slab_len)

        g_start = np.nonzero(new_group)[0]
        g_end = np.concatenate((g_start[1:] - 1, [len(e) - 1]))
        inside = _VECTOR_PREDICATES[operation](
            _fill_vec(fill_rule, wa[g_end]), _fill_vec(fill_rule, wb[g_end])
        )
        g_slab = s[g_end]
        prev = np.empty_like(inside)
        prev[0] = False
        prev[1:] = inside[:-1]
        first_of_slab = np.ones(len(g_end), dtype=bool)
        first_of_slab[1:] = g_slab[1:] != g_slab[:-1]
        prev[first_of_slab] = False
        opens = inside & ~prev
        closes = prev & ~inside
        left = g_start[opens]
        right = g_end[closes]
        if len(left) != len(right):  # pragma: no cover - invariant guard
            raise AssertionError("unbalanced interior transitions")

        if len(left):
            # Exact per-boundary comparisons right-vs-left via (q, f).
            lt0 = (q_lo[right] < q_lo[left]) | (
                (q_lo[right] == q_lo[left]) & (f_lo[right] < f_lo[left])
            )
            eq0 = (q_lo[right] == q_lo[left]) & (f_lo[right] == f_lo[left])
            lt1 = (q_hi[right] < q_hi[left]) | (
                (q_hi[right] == q_hi[left]) & (f_hi[right] < f_hi[left])
            )
            eq1 = (q_hi[right] == q_hi[left]) & (f_hi[right] == f_hi[left])
            drop = (lt0 | eq0) & (lt1 | eq1)

            xl0 = num_lo[left].astype(np.float64) / dy_f[left]
            xl1 = num_hi[left].astype(np.float64) / dy_f[left]
            xr0 = num_lo[right].astype(np.float64) / dy_f[right]
            xr1 = num_hi[right].astype(np.float64) / dy_f[right]
            # Guard against coincident-edge inversions, as the
            # reference does (exact max, applied to the floats).
            xr0 = np.where(lt0, xl0, xr0)
            xr1 = np.where(lt1, xl1, xr1)
            keep = ~drop
            t_slab = s[left][keep]
            ylo_f = b_val[t_slab].astype(np.float64) * grid
            yhi_f = b_val[t_slab + 1].astype(np.float64) * grid
            vec_cols = (
                t_slab,
                ylo_f,
                yhi_f,
                xl0[keep] * grid,
                xr0[keep] * grid,
                xl1[keep] * grid,
                xr1[keep] * grid,
            )

    # -- assemble in slab order -------------------------------------------
    result: List[Trapezoid] = []
    if vec_cols is None:
        for si in sorted(scalar_traps):
            result.extend(scalar_traps[si])
    else:
        t_slab, ylo_f, yhi_f, xl0, xr0, xl1, xr1 = vec_cols
        vec_list = list(
            zip(
                ylo_f.tolist(), yhi_f.tolist(), xl0.tolist(),
                xr0.tolist(), xl1.tolist(), xr1.tolist(),
            )
        )
        if not scalar_traps:
            result = [Trapezoid(*row) for row in vec_list]
        else:
            slab_ids = t_slab.tolist()
            vec_ptr = 0
            all_slabs = sorted(set(slab_ids) | set(scalar_traps))
            for si in all_slabs:
                if si in scalar_traps:
                    result.extend(scalar_traps[si])
                while vec_ptr < len(slab_ids) and slab_ids[vec_ptr] == si:
                    result.append(Trapezoid(*vec_list[vec_ptr]))
                    vec_ptr += 1
    if merge:
        result = merge_trapezoids(result)
    return result

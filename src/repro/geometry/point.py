"""Immutable 2-D point / vector type.

Coordinates are dimensionless floats; by library convention they are
interpreted as micrometres (µm) unless a function documents otherwise.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Tuple


class Point:
    """An immutable 2-D point supporting vector arithmetic.

    ``Point`` behaves both as a coordinate pair and as a free vector:

    >>> Point(1, 2) + Point(3, -1)
    Point(4.0, 1.0)
    >>> 2 * Point(1, 2)
    Point(2.0, 4.0)
    >>> Point(3, 4).norm()
    5.0
    """

    __slots__ = ("x", "y")

    def __init__(self, x: float, y: float) -> None:
        object.__setattr__(self, "x", float(x))
        object.__setattr__(self, "y", float(y))

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Point is immutable")

    def __reduce__(self) -> Tuple:
        # The immutability guard above breaks the default slots-based
        # unpickling path; rebuild through the constructor instead (the
        # parallel executor ships geometry across process boundaries).
        return (Point, (self.x, self.y))

    # -- conversions -------------------------------------------------

    @classmethod
    def of(cls, value: "Point | Tuple[float, float] | Iterable[float]") -> "Point":
        """Coerce a ``Point`` or 2-sequence into a ``Point``."""
        if isinstance(value, Point):
            return value
        x, y = value
        return cls(x, y)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(x, y)`` as a plain tuple."""
        return (self.x, self.y)

    def __iter__(self) -> Iterator[float]:
        yield self.x
        yield self.y

    def __len__(self) -> int:
        return 2

    def __getitem__(self, index: int) -> float:
        return (self.x, self.y)[index]

    # -- arithmetic --------------------------------------------------

    def __add__(self, other: "Point | Tuple[float, float]") -> "Point":
        other = Point.of(other)
        return Point(self.x + other.x, self.y + other.y)

    __radd__ = __add__

    def __sub__(self, other: "Point | Tuple[float, float]") -> "Point":
        other = Point.of(other)
        return Point(self.x - other.x, self.y - other.y)

    def __rsub__(self, other: "Point | Tuple[float, float]") -> "Point":
        other = Point.of(other)
        return Point(other.x - self.x, other.y - self.y)

    def __mul__(self, scalar: float) -> "Point":
        return Point(self.x * scalar, self.y * scalar)

    __rmul__ = __mul__

    def __truediv__(self, scalar: float) -> "Point":
        return Point(self.x / scalar, self.y / scalar)

    def __neg__(self) -> "Point":
        return Point(-self.x, -self.y)

    # -- geometry ----------------------------------------------------

    def dot(self, other: "Point | Tuple[float, float]") -> float:
        """Scalar (dot) product."""
        other = Point.of(other)
        return self.x * other.x + self.y * other.y

    def cross(self, other: "Point | Tuple[float, float]") -> float:
        """Z-component of the 2-D cross product (signed parallelogram area)."""
        other = Point.of(other)
        return self.x * other.y - self.y * other.x

    def norm(self) -> float:
        """Euclidean length."""
        return math.hypot(self.x, self.y)

    def norm_squared(self) -> float:
        """Squared Euclidean length (avoids the sqrt)."""
        return self.x * self.x + self.y * self.y

    def distance(self, other: "Point | Tuple[float, float]") -> float:
        """Euclidean distance to ``other``."""
        other = Point.of(other)
        return math.hypot(self.x - other.x, self.y - other.y)

    def unit(self) -> "Point":
        """Unit vector in the same direction.

        Raises:
            ZeroDivisionError: for the zero vector.
        """
        n = self.norm()
        if n == 0.0:
            raise ZeroDivisionError("cannot normalize the zero vector")
        return Point(self.x / n, self.y / n)

    def perpendicular(self) -> "Point":
        """The vector rotated +90 degrees."""
        return Point(-self.y, self.x)

    def rotated(self, angle_rad: float, about: "Point | None" = None) -> "Point":
        """Rotate counter-clockwise by ``angle_rad`` about ``about`` (origin)."""
        c, s = math.cos(angle_rad), math.sin(angle_rad)
        ox, oy = (about.x, about.y) if about is not None else (0.0, 0.0)
        dx, dy = self.x - ox, self.y - oy
        return Point(ox + c * dx - s * dy, oy + s * dx + c * dy)

    def angle(self) -> float:
        """Polar angle ``atan2(y, x)`` in radians."""
        return math.atan2(self.y, self.x)

    # -- equality / hashing -------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Point):
            return self.x == other.x and self.y == other.y
        if isinstance(other, tuple) and len(other) == 2:
            return self.x == other[0] and self.y == other[1]
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.x, self.y))

    def almost_equals(
        self, other: "Point | Tuple[float, float]", tol: float = 1e-9
    ) -> bool:
        """True if both coordinates match within absolute tolerance ``tol``."""
        other = Point.of(other)
        return abs(self.x - other.x) <= tol and abs(self.y - other.y) <= tol

    def __repr__(self) -> str:
        return f"Point({self.x}, {self.y})"


ORIGIN = Point(0.0, 0.0)

"""Affine transforms in the GDSII convention.

A GDSII structure reference applies, in order:

1. optional mirroring about the x axis (``x_reflection``),
2. magnification,
3. counter-clockwise rotation,
4. translation.

:class:`Transform` stores the full 2x3 affine matrix so arbitrary affine maps
compose correctly, while the convenience constructors mirror the GDSII
parameterization used by :class:`repro.layout.reference.CellReference`.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence, Tuple

from repro.geometry.point import Point


class Transform:
    """A 2-D affine transform ``p' = M p + t``.

    The matrix is stored row-major as ``(a, b, c, d)`` with translation
    ``(e, f)``::

        x' = a*x + b*y + e
        y' = c*x + d*y + f
    """

    __slots__ = ("a", "b", "c", "d", "e", "f")

    def __init__(
        self,
        a: float = 1.0,
        b: float = 0.0,
        c: float = 0.0,
        d: float = 1.0,
        e: float = 0.0,
        f: float = 0.0,
    ) -> None:
        self.a = float(a)
        self.b = float(b)
        self.c = float(c)
        self.d = float(d)
        self.e = float(e)
        self.f = float(f)

    # -- constructors --------------------------------------------------

    @classmethod
    def identity(cls) -> "Transform":
        """The identity transform."""
        return cls()

    @classmethod
    def translation(cls, dx: float, dy: float) -> "Transform":
        """Pure translation by ``(dx, dy)``."""
        return cls(1.0, 0.0, 0.0, 1.0, dx, dy)

    @classmethod
    def rotation(
        cls, angle_rad: float, about: Point | Tuple[float, float] | None = None
    ) -> "Transform":
        """Counter-clockwise rotation by ``angle_rad`` about ``about``."""
        cos_a, sin_a = math.cos(angle_rad), math.sin(angle_rad)
        t = cls(cos_a, -sin_a, sin_a, cos_a, 0.0, 0.0)
        if about is not None:
            origin = Point.of(about)
            t = (
                cls.translation(origin.x, origin.y)
                @ t
                @ cls.translation(-origin.x, -origin.y)
            )
        return t

    @classmethod
    def scaling(cls, sx: float, sy: float | None = None) -> "Transform":
        """Scaling by ``sx`` (and ``sy``; isotropic if ``sy`` omitted)."""
        if sy is None:
            sy = sx
        return cls(sx, 0.0, 0.0, sy, 0.0, 0.0)

    @classmethod
    def mirror_x(cls) -> "Transform":
        """Reflection about the x axis (GDSII ``x_reflection``)."""
        return cls(1.0, 0.0, 0.0, -1.0, 0.0, 0.0)

    @classmethod
    def mirror_y(cls) -> "Transform":
        """Reflection about the y axis."""
        return cls(-1.0, 0.0, 0.0, 1.0, 0.0, 0.0)

    @classmethod
    def gdsii(
        cls,
        origin: Point | Tuple[float, float] = (0.0, 0.0),
        rotation_deg: float = 0.0,
        magnification: float = 1.0,
        x_reflection: bool = False,
    ) -> "Transform":
        """Build a transform from GDSII reference parameters.

        Applies x-reflection first, then magnification, then rotation, then
        translation to ``origin`` — the order GDSII viewers use.
        """
        t = cls.identity()
        if x_reflection:
            t = cls.mirror_x() @ t
        if magnification != 1.0:
            t = cls.scaling(magnification) @ t
        if rotation_deg != 0.0:
            t = cls.rotation(math.radians(rotation_deg)) @ t
        ox, oy = Point.of(origin).as_tuple()
        if ox != 0.0 or oy != 0.0:
            t = cls.translation(ox, oy) @ t
        return t

    # -- application ---------------------------------------------------

    def apply(self, point: Point | Tuple[float, float]) -> Point:
        """Transform a single point."""
        p = Point.of(point)
        return Point(
            self.a * p.x + self.b * p.y + self.e,
            self.c * p.x + self.d * p.y + self.f,
        )

    def __call__(self, point: Point | Tuple[float, float]) -> Point:
        return self.apply(point)

    def apply_many(
        self, points: Iterable[Point | Tuple[float, float]]
    ) -> List[Point]:
        """Transform an iterable of points."""
        return [self.apply(p) for p in points]

    def apply_vector(self, vector: Point | Tuple[float, float]) -> Point:
        """Transform a free vector (ignores translation)."""
        v = Point.of(vector)
        return Point(self.a * v.x + self.b * v.y, self.c * v.x + self.d * v.y)

    # -- composition -----------------------------------------------------

    def __matmul__(self, other: "Transform") -> "Transform":
        """``(self @ other)(p) == self(other(p))``."""
        return Transform(
            self.a * other.a + self.b * other.c,
            self.a * other.b + self.b * other.d,
            self.c * other.a + self.d * other.c,
            self.c * other.b + self.d * other.d,
            self.a * other.e + self.b * other.f + self.e,
            self.c * other.e + self.d * other.f + self.f,
        )

    def determinant(self) -> float:
        """Determinant of the linear part (negative for mirrored frames)."""
        return self.a * self.d - self.b * self.c

    def is_orientation_preserving(self) -> bool:
        """True if the transform keeps polygon winding direction."""
        return self.determinant() > 0.0

    def inverse(self) -> "Transform":
        """The inverse transform.

        Raises:
            ZeroDivisionError: if the transform is singular.
        """
        det = self.determinant()
        if det == 0.0:
            raise ZeroDivisionError("transform is singular")
        ia = self.d / det
        ib = -self.b / det
        ic = -self.c / det
        id_ = self.a / det
        ie = -(ia * self.e + ib * self.f)
        if_ = -(ic * self.e + id_ * self.f)
        return Transform(ia, ib, ic, id_, ie, if_)

    # -- introspection ---------------------------------------------------

    def is_identity(self, tol: float = 1e-12) -> bool:
        """True if the transform is the identity within ``tol``."""
        return (
            abs(self.a - 1.0) <= tol
            and abs(self.b) <= tol
            and abs(self.c) <= tol
            and abs(self.d - 1.0) <= tol
            and abs(self.e) <= tol
            and abs(self.f) <= tol
        )

    def is_axis_aligned(self, tol: float = 1e-12) -> bool:
        """True for transforms that map axis-parallel edges to axis-parallel
        edges (rotations by multiples of 90 degrees, mirrors, scalings)."""
        return (abs(self.b) <= tol and abs(self.c) <= tol) or (
            abs(self.a) <= tol and abs(self.d) <= tol
        )

    def magnification(self) -> float:
        """Isotropic magnification ``sqrt(|det|)``."""
        return math.sqrt(abs(self.determinant()))

    def as_matrix(self) -> Sequence[Sequence[float]]:
        """Return the transform as a 3x3 nested-sequence matrix."""
        return (
            (self.a, self.b, self.e),
            (self.c, self.d, self.f),
            (0.0, 0.0, 1.0),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Transform):
            return NotImplemented
        return (
            self.a == other.a
            and self.b == other.b
            and self.c == other.c
            and self.d == other.d
            and self.e == other.e
            and self.f == other.f
        )

    def __hash__(self) -> int:
        return hash((self.a, self.b, self.c, self.d, self.e, self.f))

    def __repr__(self) -> str:
        return (
            f"Transform(a={self.a}, b={self.b}, c={self.c}, "
            f"d={self.d}, e={self.e}, f={self.f})"
        )

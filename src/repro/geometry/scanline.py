"""Scanline (slab decomposition) engine over integer-snapped polygon sets.

This is the workhorse of the geometry kernel.  It implements boolean
operations between two polygon *sets* by sweeping a horizontal scanline:

1. All polygon vertices are snapped to an integer database-unit grid.
2. Candidate slab boundaries are collected: every vertex y plus the y of
   every edge/edge crossing (found with a bounding-box-pruned sweep and
   computed exactly with :class:`fractions.Fraction`).
3. Within a slab no two edges cross, so the edges active in the slab have a
   total left-to-right order.  Sweeping that order while accumulating
   winding numbers for group A and group B yields the interior intervals of
   any boolean combination, each emitted as one horizontal trapezoid.
4. Vertically compatible trapezoids are merged back into maximal trapezoids.

The same slab decomposition *is* the trapezoid fracture used by e-beam
pattern generators, which is why the 1970s data-preparation pipelines fused
the two steps.  Exact rational arithmetic keeps the engine robust without
external dependencies.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.geometry.polygon import Polygon
from repro.geometry.predicates import segment_intersection_ys, snap
from repro.geometry.trapezoid import Trapezoid

IntPoint = Tuple[int, int]

#: Default database unit in layout units (1 nm when layout units are µm).
DEFAULT_GRID = 1e-3


class ScanEdge:
    """A non-horizontal polygon edge prepared for the sweep.

    ``(x0, y0)`` is always the lower endpoint.  ``winding`` is ``+1`` if the
    original directed edge pointed upward and ``-1`` otherwise; ``group``
    identifies which operand (0 = A, 1 = B) the edge belongs to.
    """

    __slots__ = ("x0", "y0", "x1", "y1", "winding", "group")

    def __init__(
        self, x0: int, y0: int, x1: int, y1: int, winding: int, group: int
    ) -> None:
        self.x0 = x0
        self.y0 = y0
        self.x1 = x1
        self.y1 = y1
        self.winding = winding
        self.group = group

    def x_at(self, y: Fraction) -> Fraction:
        """Exact x coordinate at height ``y`` (must lie within the edge)."""
        dy = self.y1 - self.y0
        return Fraction(self.x0) + (y - self.y0) * (self.x1 - self.x0) / dy

    def __repr__(self) -> str:
        return (
            f"ScanEdge(({self.x0},{self.y0})->({self.x1},{self.y1}), "
            f"w={self.winding}, g={self.group})"
        )


def snap_polygon(polygon: Polygon, grid: float) -> List[IntPoint]:
    """Snap a polygon's vertices to integer grid coordinates.

    Consecutive duplicates created by the snap are dropped.
    """
    pts: List[IntPoint] = []
    for v in polygon.vertices:
        p = (snap(v.x, grid), snap(v.y, grid))
        if not pts or p != pts[-1]:
            pts.append(p)
    if len(pts) >= 2 and pts[0] == pts[-1]:
        pts.pop()
    return pts


def edges_from_rings(
    rings: Iterable[Sequence[IntPoint]], group: int
) -> List[ScanEdge]:
    """Build scan edges from integer vertex rings, dropping horizontals."""
    edges: List[ScanEdge] = []
    for ring in rings:
        n = len(ring)
        if n < 3:
            continue
        for i in range(n):
            ax, ay = ring[i]
            bx, by = ring[(i + 1) % n]
            if ay == by:
                continue
            if ay < by:
                edges.append(ScanEdge(ax, ay, bx, by, +1, group))
            else:
                edges.append(ScanEdge(bx, by, ax, ay, -1, group))
    return edges


def _crossing_ys(edges: List[ScanEdge]) -> List[Fraction]:
    """All y where any two edges intersect, via a y-sorted pruned sweep."""
    ys: List[Fraction] = []
    order = sorted(range(len(edges)), key=lambda i: edges[i].y0)
    active: List[int] = []
    for idx in order:
        e = edges[idx]
        still_active = []
        for j in active:
            o = edges[j]
            if o.y1 <= e.y0:
                continue
            still_active.append(j)
            # Bounding-box prune in x before the exact test.
            exl, exr = min(e.x0, e.x1), max(e.x0, e.x1)
            oxl, oxr = min(o.x0, o.x1), max(o.x0, o.x1)
            if exr < oxl or oxr < exl:
                continue
            ys.extend(
                segment_intersection_ys(
                    (e.x0, e.y0), (e.x1, e.y1), (o.x0, o.y0), (o.x1, o.y1)
                )
            )
        still_active.append(idx)
        active = still_active
    return ys


def slab_boundaries(edges: List[ScanEdge]) -> List[Fraction]:
    """Sorted, de-duplicated slab boundary ys for an edge set."""
    ys = {Fraction(e.y0) for e in edges}
    ys.update(Fraction(e.y1) for e in edges)
    ys.update(_crossing_ys(edges))
    return sorted(ys)


FillRule = Callable[[int], bool]


def nonzero(w: int) -> bool:
    """Nonzero winding fill rule."""
    return w != 0


def evenodd(w: int) -> bool:
    """Even-odd (parity) fill rule."""
    return (w & 1) == 1


def sweep_trapezoids(
    edges: List[ScanEdge],
    predicate: Callable[[bool, bool], bool],
    fill_rule: FillRule = nonzero,
    grid: float = DEFAULT_GRID,
    merge: bool = True,
) -> List[Trapezoid]:
    """Run the scanline sweep and emit interior trapezoids in layout units.

    Args:
        edges: prepared scan edges of both operand groups.
        predicate: ``predicate(inside_a, inside_b)`` decides interior-ness.
        fill_rule: winding-number interpretation for each group.
        grid: database unit used to convert back to layout units.
        merge: vertically merge compatible trapezoids before returning.

    Returns:
        Non-overlapping trapezoids covering the predicate's interior.
    """
    if not edges:
        return []
    boundaries = slab_boundaries(edges)
    if len(boundaries) < 2:
        return []

    order = sorted(range(len(edges)), key=lambda i: edges[i].y0)
    pointer = 0
    active: List[int] = []
    result: List[Trapezoid] = []

    for si in range(len(boundaries) - 1):
        y_lo = boundaries[si]
        y_hi = boundaries[si + 1]
        # Admit edges starting at or below this slab.
        while pointer < len(order) and edges[order[pointer]].y0 <= y_lo:
            active.append(order[pointer])
            pointer += 1
        # Retire edges that end at or below the slab bottom.
        active = [i for i in active if edges[i].y1 > y_lo]
        if not active:
            continue
        y_mid = (y_lo + y_hi) / 2
        spanning = [i for i in active if edges[i].y1 >= y_hi]
        if not spanning:
            continue
        keyed = sorted(
            ((edges[i].x_at(y_mid), i) for i in spanning), key=lambda t: t[0]
        )
        winding_a = 0
        winding_b = 0
        inside = False
        open_edge: Optional[ScanEdge] = None
        k = 0
        n = len(keyed)
        while k < n:
            x_here = keyed[k][0]
            # Fold all edges at the same x into one transition.
            first_idx = keyed[k][1]
            while k < n and keyed[k][0] == x_here:
                e = edges[keyed[k][1]]
                if e.group == 0:
                    winding_a += e.winding
                else:
                    winding_b += e.winding
                k += 1
            now_inside = predicate(fill_rule(winding_a), fill_rule(winding_b))
            if now_inside and not inside:
                open_edge = edges[first_idx]
            elif not now_inside and inside:
                close_edge = edges[keyed[k - 1][1]]
                trap = _emit(open_edge, close_edge, y_lo, y_hi, grid)
                if trap is not None:
                    result.append(trap)
                open_edge = None
            inside = now_inside
    if merge:
        result = merge_trapezoids(result)
    return result


def _emit(
    left: ScanEdge,
    right: ScanEdge,
    y_lo: Fraction,
    y_hi: Fraction,
    grid: float,
) -> Optional[Trapezoid]:
    """Build one trapezoid between two edges across a slab, in layout units."""
    xl0 = left.x_at(y_lo)
    xl1 = left.x_at(y_hi)
    xr0 = right.x_at(y_lo)
    xr1 = right.x_at(y_hi)
    if xr0 <= xl0 and xr1 <= xl1:
        return None
    # Guard against numerical inversions from coincident edges.
    xr0 = max(xr0, xl0)
    xr1 = max(xr1, xl1)
    y0f = float(y_lo) * grid
    y1f = float(y_hi) * grid
    if y1f <= y0f:
        # The slab's exact height is positive but smaller than one ulp
        # at this magnitude, so it renders as zero height in layout
        # units and carries no area.
        return None
    return Trapezoid(
        y0f,
        y1f,
        float(xl0) * grid,
        float(xr0) * grid,
        float(xl1) * grid,
        float(xr1) * grid,
    )


def merge_trapezoids(traps: List[Trapezoid], tol: float = 1e-9) -> List[Trapezoid]:
    """Merge vertically adjacent trapezoids whose sides continue straight.

    Two trapezoids merge when the top edge of the lower coincides with the
    bottom edge of the upper and both side slopes are preserved, so the merged
    figure is itself a valid trapezoid.  This undoes the slab fragmentation
    that the sweep introduces at every foreign vertex y.
    """
    if not traps:
        return []
    by_bottom: Dict[float, List[int]] = {}
    for idx, t in enumerate(traps):
        by_bottom.setdefault(round(t.y_bottom, 9), []).append(idx)

    consumed = [False] * len(traps)
    merged: List[Trapezoid] = []

    order = sorted(
        range(len(traps)),
        key=lambda i: (traps[i].y_bottom, traps[i].x_bottom_left),
    )
    for idx in order:
        if consumed[idx]:
            continue
        current = traps[idx]
        consumed[idx] = True
        while True:
            candidates = by_bottom.get(round(current.y_top, 9), [])
            partner = None
            for j in candidates:
                if consumed[j]:
                    continue
                upper = traps[j]
                if (
                    abs(upper.x_bottom_left - current.x_top_left) <= tol
                    and abs(upper.x_bottom_right - current.x_top_right) <= tol
                    and _slopes_match(current, upper, tol)
                ):
                    partner = j
                    break
            if partner is None:
                break
            upper = traps[partner]
            consumed[partner] = True
            current = Trapezoid(
                current.y_bottom,
                upper.y_top,
                current.x_bottom_left,
                current.x_bottom_right,
                upper.x_top_left,
                upper.x_top_right,
            )
        merged.append(current)
    return merged


def _slopes_match(lower: Trapezoid, upper: Trapezoid, tol: float) -> bool:
    """True if both side edges keep their slope across the shared boundary."""
    h_lo = lower.height
    h_up = upper.height
    left_lo = (lower.x_top_left - lower.x_bottom_left) / h_lo
    left_up = (upper.x_top_left - upper.x_bottom_left) / h_up
    right_lo = (lower.x_top_right - lower.x_bottom_right) / h_lo
    right_up = (upper.x_top_right - upper.x_bottom_right) / h_up
    return abs(left_lo - left_up) <= tol and abs(right_lo - right_up) <= tol

"""Low-level geometric predicates on exact integer coordinates.

The boolean engine snaps all coordinates to an integer database-unit grid, so
these predicates operate on integer tuples and are exact (Python integers do
not overflow).  Points are plain ``(x, y)`` tuples of ints.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Tuple

IntPoint = Tuple[int, int]


def orientation(p: IntPoint, q: IntPoint, r: IntPoint) -> int:
    """Sign of the signed area of triangle ``p, q, r``.

    Returns ``+1`` for counter-clockwise, ``-1`` for clockwise and ``0`` for
    collinear points.  Exact for integer inputs.
    """
    cross = (q[0] - p[0]) * (r[1] - p[1]) - (q[1] - p[1]) * (r[0] - p[0])
    if cross > 0:
        return 1
    if cross < 0:
        return -1
    return 0


def on_segment(p: IntPoint, q: IntPoint, r: IntPoint) -> bool:
    """True if collinear point ``q`` lies on the closed segment ``p r``."""
    return (
        min(p[0], r[0]) <= q[0] <= max(p[0], r[0])
        and min(p[1], r[1]) <= q[1] <= max(p[1], r[1])
    )


def segments_intersect(
    p1: IntPoint, p2: IntPoint, q1: IntPoint, q2: IntPoint
) -> bool:
    """True if closed segments ``p1 p2`` and ``q1 q2`` share any point."""
    o1 = orientation(p1, p2, q1)
    o2 = orientation(p1, p2, q2)
    o3 = orientation(q1, q2, p1)
    o4 = orientation(q1, q2, p2)
    if o1 != o2 and o3 != o4:
        return True
    if o1 == 0 and on_segment(p1, q1, p2):
        return True
    if o2 == 0 and on_segment(p1, q2, p2):
        return True
    if o3 == 0 and on_segment(q1, p1, q2):
        return True
    if o4 == 0 and on_segment(q1, p2, q2):
        return True
    return False


def segment_intersection_ys(
    p1: IntPoint, p2: IntPoint, q1: IntPoint, q2: IntPoint
) -> List[Fraction]:
    """Y-coordinates where two segments cross, as exact fractions.

    For a proper (transversal) crossing this is a single y value; for
    collinear overlap the endpoint ys of the overlap are returned.  Used by
    the scanline engine to place slab boundaries so that within a slab no two
    active edges cross.
    """
    d1x, d1y = p2[0] - p1[0], p2[1] - p1[1]
    d2x, d2y = q2[0] - q1[0], q2[1] - q1[1]
    denom = d1x * d2y - d1y * d2x
    if denom == 0:
        # Parallel.  Check for collinear overlap.
        if orientation(p1, p2, q1) != 0:
            return []
        ys = []
        lo = max(min(p1[1], p2[1]), min(q1[1], q2[1]))
        hi = min(max(p1[1], p2[1]), max(q1[1], q2[1]))
        if lo <= hi:
            ys.extend([Fraction(lo), Fraction(hi)])
        return ys
    t_num = (q1[0] - p1[0]) * d2y - (q1[1] - p1[1]) * d2x
    u_num = (q1[0] - p1[0]) * d1y - (q1[1] - p1[1]) * d1x
    t = Fraction(t_num, denom)
    u = Fraction(u_num, denom)
    if 0 <= t <= 1 and 0 <= u <= 1:
        y = Fraction(p1[1]) + t * d1y
        return [y]
    return []


def x_at_y(p1: IntPoint, p2: IntPoint, y: Fraction) -> Fraction:
    """Exact x coordinate of the (non-horizontal) segment ``p1 p2`` at ``y``."""
    dy = p2[1] - p1[1]
    if dy == 0:
        raise ValueError("x_at_y on a horizontal segment")
    t = (y - p1[1]) / dy
    return Fraction(p1[0]) + t * (p2[0] - p1[0])


def point_in_polygon(point: IntPoint, vertices: List[IntPoint]) -> int:
    """Winding classification of ``point`` against a closed polygon.

    Returns ``1`` for strictly inside (nonzero winding), ``0`` for strictly
    outside, ``-1`` for on the boundary.
    """
    px, py = point
    winding = 0
    n = len(vertices)
    for i in range(n):
        ax, ay = vertices[i]
        bx, by = vertices[(i + 1) % n]
        if (ax, ay) == (px, py) or (bx, by) == (px, py):
            return -1
        if orientation((ax, ay), (bx, by), (px, py)) == 0 and on_segment(
            (ax, ay), (px, py), (bx, by)
        ):
            return -1
        if ay <= py:
            if by > py and orientation((ax, ay), (bx, by), (px, py)) > 0:
                winding += 1
        else:
            if by <= py and orientation((ax, ay), (bx, by), (px, py)) < 0:
                winding -= 1
    return 1 if winding != 0 else 0


def snap(value: float, grid: float) -> int:
    """Snap a float coordinate to the integer grid with half-up rounding."""
    scaled = value / grid
    return int(scaled + 0.5) if scaled >= 0 else -int(-scaled + 0.5)


def bounding_boxes_overlap(
    a_min: IntPoint, a_max: IntPoint, b_min: IntPoint, b_max: IntPoint
) -> bool:
    """True if two closed axis-aligned boxes intersect."""
    return (
        a_min[0] <= b_max[0]
        and b_min[0] <= a_max[0]
        and a_min[1] <= b_max[1]
        and b_min[1] <= a_max[1]
    )

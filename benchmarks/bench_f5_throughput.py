"""F5 — Wafer throughput vs. resist sensitivity and beam current.

Reconstructs the throughput figure: wafers per hour for each machine as
a function of resist sensitivity.  The raster machine is flat until the
column current ceiling forces its pixel rate down; vector and VSB decay
hyperbolically with dose from the start.  The crossover locates the
resist regime where each architecture wins — the tutorial's practical
recommendation.
"""

import pytest

from repro.analysis.tables import Table
from repro.analysis.throughput import ThroughputModel
from repro.core.job import MachineJob
from repro.machine.datapath import raster_channel_check, rle_bytes_estimate
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter

CHIP = 2236.0  # 5 mm²
DENSITY = 0.25
#: 1 µm minimum features at 25 % density — the regime where the
#: architecture winner flips along the resist-sensitivity axis.
FIGURES = int(DENSITY * CHIP * CHIP / 1.0)

SENSITIVITIES = (0.4, 1.0, 5.0, 20.0, 100.0, 500.0)


def job_at(dose: float) -> MachineJob:
    return MachineJob.synthetic(
        figure_count=FIGURES,
        pattern_area=DENSITY * CHIP * CHIP,
        bounding_box=(0, 0, CHIP, CHIP),
        base_dose=dose,
    )


def run_experiment() -> str:
    table = Table(
        ["dose [µC/cm²]", "raster [wph]", "vector [wph]", "VSB [wph]",
         "winner"],
        title="F5: wafers/hour vs. resist sensitivity "
        "(5 mm² chip, 25% density, 3-inch wafer)",
    )
    model = ThroughputModel()
    for dose in SENSITIVITIES:
        job = job_at(dose)
        rates = {}
        for machine in (
            RasterScanWriter(address_unit=0.5, calibration_time=2.0),
            VectorScanWriter(spot_size=0.5),
            ShapedBeamWriter(max_shot=2.0),
        ):
            rates[machine.name] = model.report(machine, job).wafers_per_hour
        winner = max(rates, key=rates.get)
        table.add_row(
            [
                dose,
                rates["raster"],
                rates["vector"],
                rates["shaped-beam"],
                winner,
            ]
        )
    return table.render()


def run_data_rate_check() -> str:
    table = Table(
        ["density", "RLE rate [MB/s]", "channel-limited?"],
        title="F5a: raster datapath demand vs. a 5 MB/s channel",
    )
    from repro.geometry.trapezoid import Trapezoid

    writer = RasterScanWriter(address_unit=0.5)
    for density in (0.05, 0.25, 0.6):
        count = int(density * CHIP * CHIP / 4.0)
        # Representative figure population: 2x2 µm rectangles.
        figures = [Trapezoid.from_rectangle(0, 0, 2, 2)] * count
        rle = rle_bytes_estimate(figures, height=CHIP, address_unit=0.5)
        write_time = (CHIP / 0.5) ** 2 / writer.pixel_rate
        check = raster_channel_check(
            writer.pixel_rate, rle, write_time, channel_rate=5e6
        )
        table.add_row(
            [
                f"{density:.0%}",
                check.required_rate / 1e6,
                "yes" if check.limited else "no",
            ]
        )
    return table.render()


def test_f5_throughput(benchmark, save_table):
    save_table("f5_throughput", run_experiment())
    save_table("f5a_data_rate", run_data_rate_check())
    model = ThroughputModel()
    machine = RasterScanWriter()
    benchmark(model.report, machine, job_at(5.0))


def test_f5_shapes(benchmark, save_table):
    """The qualitative shapes: raster flat then falling; vector 1/dose."""
    model = ThroughputModel()
    raster = [
        model.report(RasterScanWriter(address_unit=0.5), job_at(d)).wafers_per_hour
        for d in (0.4, 5.0, 500.0)
    ]
    # Flat between fast resists, degraded for very slow resist.
    assert raster[0] == pytest.approx(raster[1], rel=0.05)
    assert raster[2] < raster[0] * 0.6

    vector = [
        model.report(VectorScanWriter(spot_size=0.5), job_at(d)).wafers_per_hour
        for d in (0.4, 40.0)
    ]
    assert vector[1] < vector[0]
    benchmark(model.report, VectorScanWriter(), job_at(20.0))

"""F4 — Field stitching: butting error vs. calibration order and stage noise.

Reconstructs the overlay-budget figure: the distribution of butting
errors at field boundaries as a function of deflection-calibration
polynomial order, and the decomposition into deflection and stage
contributions.
"""


from repro.analysis.tables import Table
from repro.machine.deflection import DeflectionField
from repro.machine.stage import Stage
from repro.machine.stitching import StitchingModel, overlay_budget


def run_order_sweep() -> str:
    table = Table(
        ["cal. order", "butting RMS [µm]", "max [µm]", "deflection RMS",
         "stage RMS"],
        title="F4: butting error vs. deflection calibration order "
        "(2 mm field, 50 nm stage noise)",
    )
    field = DeflectionField(size=2000.0)
    stage = Stage(position_noise=0.05)
    for order in (None, 1, 3, 5):
        model = StitchingModel(
            field=field, stage=stage, calibration_order=order
        )
        report = model.simulate(columns=4, rows=4, seed=7)
        table.add_row(
            [
                "none" if order is None else order,
                report.rms,
                report.maximum,
                report.deflection_contribution_rms,
                report.stage_contribution_rms,
            ]
        )
    return table.render()


def run_stage_noise_sweep() -> str:
    table = Table(
        ["stage noise [µm]", "butting RMS [µm]"],
        title="F4a: butting error vs. stage position noise (order-3 cal.)",
    )
    for noise in (0.01, 0.025, 0.05, 0.1, 0.2):
        model = StitchingModel(
            stage=Stage(position_noise=noise), calibration_order=3
        )
        report = model.simulate(columns=4, rows=4, seed=7)
        table.add_row([noise, report.rms])
    return table.render()


def run_overlay_budget() -> str:
    field = DeflectionField(size=2000.0)
    cal = field.calibrate(order=3)
    contributions = {
        "deflection residual": cal.edge_residual_rms,
        "stage position": 0.05,
        "mark detection": 0.02,
        "substrate distortion": 0.03,
    }
    total, share = overlay_budget(contributions)
    table = Table(
        ["contribution", "1σ [µm]", "share of variance"],
        title=f"F4b: overlay budget (RSS total = {total:.4f} µm)",
    )
    for name, sigma in contributions.items():
        table.add_row([name, sigma, f"{share[name]:.1%}"])
    return table.render()


def run_multipass_sweep() -> str:
    table = Table(
        ["passes", "butting RMS [µm]", "stage RMS [µm]"],
        title="F4c: multipass averaging (100 nm stage noise, order-3 cal.)",
    )
    model = StitchingModel(
        stage=Stage(position_noise=0.1), calibration_order=3
    )
    for passes in (1, 2, 4, 8):
        report = model.simulate(columns=4, rows=4, seed=7, passes=passes)
        table.add_row([passes, report.rms, report.stage_contribution_rms])
    return table.render()


def test_f4_stitching(benchmark, save_table):
    save_table("f4_stitching_order", run_order_sweep())
    save_table("f4a_stage_noise", run_stage_noise_sweep())
    save_table("f4b_overlay_budget", run_overlay_budget())
    save_table("f4c_multipass", run_multipass_sweep())
    model = StitchingModel()
    benchmark(model.simulate, 4, 4)


def test_f4_calibration_order_monotone(benchmark, save_table):
    """Higher calibration order must not worsen butting (zero noise)."""
    stage = Stage(position_noise=0.0)
    rms = []
    for order in (None, 1, 3, 5):
        model = StitchingModel(stage=stage, calibration_order=order)
        rms.append(model.simulate(seed=3).rms)
    assert rms[1] <= rms[0] + 1e-12
    assert rms[2] <= rms[1]
    assert rms[3] <= rms[2]
    field = DeflectionField()
    benchmark(field.calibrate, 3)

"""F10 — Incremental re-runs through the content-addressed shard cache.

Measures the three workflows the cache exists for, on the FZP case
study (the fracture-hostile, PEC-heavy workload of F7/F9):

* **cold** — empty cache: every shard fractured and corrected, results
  stored.
* **warm** — unchanged layout: every shard answered from the cache;
  fracture and PEC are skipped entirely.
* **edited** — one polygon of one field nudged: exactly that field's
  shard is re-computed, every other shard hits.

Correctness is asserted, not assumed: warm and edited runs must be
byte-identical (exact job digests) to cold runs of the same geometry,
the warm run must hit on every shard, and the edited run must miss on
exactly one.  The headline speedup floor (warm ≥ 5× cold) is asserted
in full mode; ``--quick`` keeps the assertions on hit counts and
determinism only, since sub-second runs make wall-clock ratios noisy.
"""

import time

from bench_f9_parallel_scaling import sectored_zone_plate

from repro.analysis.tables import Table
from repro.core.pipeline import PreparationPipeline
from repro.geometry.polygon import Polygon
from repro.layout.flatten import flatten_cell
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

FIELD_SIZE = 15.0
WARM_SPEEDUP_FLOOR = 5.0


def fzp_polygons(quick: bool):
    lib = sectored_zone_plate(
        zones=10 if quick else 24, sectors=8 if quick else 12
    )
    flat = flatten_cell(lib.top_cell())
    polygons = []
    for polys in flat.values():
        polygons.extend(polys)
    return polygons


def edit_one_polygon(polygons):
    """Nudge one vertex of one polygon, staying inside its field.

    A ~20 nm vertex move is an edit a designer would actually make; it
    must invalidate exactly the one shard that owns the polygon.  The
    vertex moves radially *toward* the plate centre, so the sector can
    only retreat into an empty gap zone (or slide along a shared radial
    edge) — the edit never creates a new cross-shard overlap.
    """
    edited = list(polygons)
    victim = edited[len(edited) // 2]
    vertices = [(p.x, p.y) for p in victim.vertices]
    vx, vy = vertices[0]
    vertices[0] = (vx * (1.0 - 1e-3), vy * (1.0 - 1e-3))
    edited[len(edited) // 2] = Polygon(vertices)
    return edited


def run_incremental(quick: bool, cache_dir):
    psf = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
    pipe = PreparationPipeline(
        corrector=IterativeDoseCorrector(),
        psf=psf,
        field_size=FIELD_SIZE,
        cache_dir=cache_dir,
    )
    polygons = fzp_polygons(quick)

    def timed(polys, **kwargs):
        start = time.perf_counter()
        result = pipe.run_polygons(polys, **kwargs)
        return result, time.perf_counter() - start

    cold, cold_time = timed(polygons)
    warm, warm_time = timed(polygons)
    edited_polys = edit_one_polygon(polygons)
    edited, edited_time = timed(edited_polys)
    # Reference for the edited geometry, bypassing the cache.
    edited_ref, edited_ref_time = timed(edited_polys, cache=False)

    rows = [
        ("cold", cold, cold_time),
        ("warm", warm, warm_time),
        ("one-field edit", edited, edited_time),
        ("edit, no cache", edited_ref, edited_ref_time),
    ]
    table = Table(
        ["run", "shards", "hits", "misses", "time [s]", "vs cold"],
        title=f"F10: incremental FZP re-runs (quick={quick})",
    )
    for label, result, elapsed in rows:
        stats = result.execution
        table.add_row(
            [
                label,
                stats.shard_count,
                stats.cache_hits,
                stats.cache_misses,
                elapsed,
                f"{cold_time / elapsed:.1f}x",
            ]
        )
    return table.render(), rows, (cold, warm, edited, edited_ref)


def test_f10_incremental_rerun(save_table, quick, tmp_path):
    text, rows, (cold, warm, edited, edited_ref) = run_incremental(
        quick, tmp_path / "shard-cache"
    )
    save_table("f10_incremental", text)

    shard_count = cold.execution.shard_count
    assert cold.execution.cache_hits == 0
    assert cold.execution.cache_misses == shard_count

    # Warm full-hit re-run: no shard computed, byte-identical output.
    assert warm.execution.cache_hits == shard_count
    assert warm.execution.cache_misses == 0
    assert warm.job.digest() == cold.job.digest()

    # One-field edit: exactly one shard re-computed, and the cached run
    # is byte-identical to an uncached run of the edited geometry.
    assert edited.execution.cache_misses == 1
    assert edited.execution.cache_hits == shard_count - 1
    assert edited.job.digest() == edited_ref.job.digest()
    assert edited.job.digest() != cold.job.digest()

    cold_time = rows[0][2]
    warm_time = rows[1][2]
    if not quick:
        assert cold_time / warm_time >= WARM_SPEEDUP_FLOOR, (
            f"warm re-run only {cold_time / warm_time:.1f}x faster "
            f"than cold (floor {WARM_SPEEDUP_FLOOR}x)"
        )

"""F1 — Proximity effect: printed linewidth vs. local pattern density.

The central proximity figure: a fine line's developed CD as a function of
the surrounding pattern density, uncorrected and with each correction
scheme (iterative dose, shape bias, GHOST).  Uncorrected CD grows with
density; correction flattens the curve.
"""


from repro.analysis.tables import Table
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.ghost import GhostCorrector, GhostExposure
from repro.pec.shape_bias import ShapeBiasCorrector
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.metrology import measure_linewidth
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.12, beta=2.0, eta=0.74)
LINE_WIDTH = 0.6
PAD = 14.0  # µm pad height/length
THRESHOLD = 0.5


def density_pattern(density: float):
    """A 0.6 µm test line at the centre of a grating of given duty."""
    pitch = 1.5
    lines = int(PAD / pitch)
    polys = []
    center_index = lines // 2
    center_x = None
    for i in range(lines):
        x = i * pitch
        if i == center_index:
            width = LINE_WIDTH
            center_x = x + width / 2
        else:
            width = pitch * density
        if width > 0:
            polys.append(Polygon.rectangle(x, 0, x + width, PAD))
    return polys, center_x


def printed_cd(shots, center_x, ghost_shots=None):
    bbox = (0, 0, PAD, PAD)
    frame = RasterFrame.around(bbox, 0.05, margin=6.0)
    if ghost_shots is not None:
        exposure = GhostExposure(PSF, frame)
        image = exposure.absorbed(shots, ghost_shots)
        threshold = THRESHOLD + PSF.background_level() * 0.9
    else:
        sim = ExposureSimulator(PSF, frame)
        image = sim.absorbed_energy(shot_dose_map(shots, frame))
        threshold = THRESHOLD
    return measure_linewidth(
        image, frame, threshold, cut_y=PAD / 2, near_x=center_x
    )


def run_experiment() -> str:
    table = Table(
        ["density", "uncorrected [µm]", "dose-PEC [µm]", "edge-PEC [µm]",
         "bias [µm]", "GHOST [µm]"],
        title=(
            f"F1: printed CD of a {LINE_WIDTH} µm line vs. surrounding "
            "density (design = 0.600)"
        ),
    )
    fracturer = TrapezoidFracturer()
    for density in (0.0, 0.2, 0.4, 0.6, 0.8):
        polys, center_x = density_pattern(density)
        shots = fracturer.fracture_to_shots(polys)

        uncorrected = printed_cd(shots, center_x)
        dose = printed_cd(
            IterativeDoseCorrector().correct(shots, PSF), center_x
        )
        edge = printed_cd(
            IterativeDoseCorrector(sample_mode="edge").correct(shots, PSF),
            center_x,
        )
        bias = printed_cd(
            ShapeBiasCorrector().correct(shots, PSF), center_x
        )
        ghost = GhostCorrector(margin=6.0)
        ghost_shots = ghost.ghost_shots(shots, PSF)
        ghosted = printed_cd(shots, center_x, ghost_shots=ghost_shots)

        table.add_row(
            [
                f"{density:.0%}",
                _fmt(uncorrected),
                _fmt(dose),
                _fmt(edge),
                _fmt(bias),
                _fmt(ghosted),
            ]
        )
    return table.render()


def _fmt(value):
    return f"{value:.3f}" if value is not None else "no print"


def cd_spread(correct):
    """Max-min printed CD across the density sweep for one scheme."""
    fracturer = TrapezoidFracturer()
    values = []
    for density in (0.0, 0.4, 0.8):
        polys, center_x = density_pattern(density)
        shots = fracturer.fracture_to_shots(polys)
        if correct is not None:
            shots = correct(shots)
        cd = printed_cd(shots, center_x)
        if cd is not None:
            values.append(cd)
    return max(values) - min(values) if len(values) >= 2 else float("inf")


def test_f1_proximity_cd(benchmark, save_table):
    save_table("f1_proximity_cd", run_experiment())
    polys, _ = density_pattern(0.5)
    shots = TrapezoidFracturer().fracture_to_shots(polys)
    frame = RasterFrame.around((0, 0, PAD, PAD), 0.05, margin=6.0)
    sim = ExposureSimulator(PSF, frame)
    benchmark(sim.expose_shots, shots)


def test_f1_dose_pec_flattens_cd(benchmark, save_table):
    """Quantitative claim: dose PEC reduces the CD-vs-density spread."""
    raw_spread = cd_spread(None)
    pec_spread = cd_spread(
        lambda shots: IterativeDoseCorrector().correct(shots, PSF)
    )
    assert pec_spread < raw_spread
    polys, _ = density_pattern(0.5)
    shots = TrapezoidFracturer().fracture_to_shots(polys)
    benchmark(IterativeDoseCorrector().correct, shots, PSF)


def test_f1_edge_pec_near_flat(benchmark, save_table):
    """Edge targeting: CD spread below 10 nm across the density sweep."""
    edge_spread = cd_spread(
        lambda shots: IterativeDoseCorrector(sample_mode="edge").correct(
            shots, PSF
        )
    )
    assert edge_spread < 0.01
    polys, _ = density_pattern(0.5)
    shots = TrapezoidFracturer().fracture_to_shots(polys)
    benchmark(
        IterativeDoseCorrector(sample_mode="edge").correct, shots, PSF
    )

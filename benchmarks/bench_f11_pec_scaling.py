"""F11 — Sparse/hybrid PEC engine scaling.

The dense exposure matrix costs ``n_points × n_shots`` doubles and an
O(N·M) assembly sweep, which dominates cold-run time and peak memory
beyond a few thousand shots.  This experiment measures the three
exposure-operator backends (:mod:`repro.pec.operator`) on a VSB-style
grating whose shot count scales into the tens of thousands:

* **speed** — full ``IterativeDoseCorrector.correct`` wall clock per
  backend;
* **memory** — operator matrix storage (dense ndarray vs. CSR arrays
  vs. hybrid CSR + grid);
* **equivalence** — the sparse matrix must equal the dense one *bit for
  bit* (tolerance 0: same nonzero pattern, same values), sparse doses
  must match the dense doses' canonical 9-digit dose digest (matvec
  summation order is the only difference), and hybrid-corrected
  printed CDs on the F1/F2-style workloads must stay within 0.5 % of
  the dense-corrected reference.

In ``--quick`` mode (the CI perf-smoke job) the 5k-shot case must show
sparse no slower than dense and sparse matrix memory at ≤ 1/20 of the
dense baseline — the regression gate for the sparse engine.
"""

import time

import numpy as np

from repro.analysis.tables import Table
from repro.core.job import MachineJob
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.geometry.rasterize import RasterFrame
from repro.pec.base import shot_sample_points
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.operator import build_exposure_operator
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.metrology import measure_linewidth
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
SPEEDUP_FLOOR = 5.0
MEMORY_FLOOR = 20.0
CD_TOLERANCE = 0.005


def vsb_grating_shots(lines: int, length: float):
    """A large line/space grating fractured into ≤2 µm VSB shots."""
    polys = [
        Polygon.rectangle(i * 2.0, 0.0, i * 2.0 + 1.0, length)
        for i in range(lines)
    ]
    return ShotFracturer(max_shot=2.0).fracture_to_shots(polys)


def scaling_cases(quick: bool):
    if quick:
        return [("5k", vsb_grating_shots(100, 100.0))]
    return [
        ("5k", vsb_grating_shots(100, 100.0)),
        ("20k", vsb_grating_shots(200, 200.0)),
    ]


def dose_digest(shots) -> str:
    """Canonical 9-significant-digit digest of the dose map."""
    return MachineJob(list(shots), name="f11").dose_digest()


def run_scaling(quick: bool):
    table = Table(
        [
            "case",
            "shots",
            "mode",
            "correct [s]",
            "speedup",
            "matrix [MB]",
            "mem ratio",
        ],
        title=f"F11: PEC exposure-operator scaling (quick={quick})",
    )
    records = []
    checks = {}
    for case, shots in scaling_cases(quick):
        points = shot_sample_points(shots, "centroid")
        times = {}
        nbytes = {}
        digests = {}
        for mode in ("dense", "sparse", "hybrid"):
            corrector = IterativeDoseCorrector(matrix_mode=mode)
            start = time.perf_counter()
            corrected = corrector.correct(shots, PSF)
            times[mode] = time.perf_counter() - start
            digests[mode] = dose_digest(corrected)
            operator = build_exposure_operator(
                points, shots, PSF, mode=mode
            )
            nbytes[mode] = operator.matrix_nbytes
            if mode == "sparse" and case == "5k":
                dense_ref = build_exposure_operator(
                    points, shots, PSF, mode="dense"
                )
                equal = np.array_equal(
                    operator.matrix.toarray(), dense_ref.matrix
                )
                checks["sparse_matrix_bit_identical"] = bool(equal)
                del dense_ref
            del operator
        for mode in ("dense", "sparse", "hybrid"):
            speedup = times["dense"] / times[mode]
            ratio = nbytes["dense"] / max(nbytes[mode], 1)
            table.add_row(
                [
                    case,
                    len(shots),
                    mode,
                    times[mode],
                    f"{speedup:.1f}x",
                    nbytes[mode] / 1e6,
                    f"{ratio:.0f}x",
                ]
            )
            records.append(
                {
                    "case": case,
                    "shots": len(shots),
                    "mode": mode,
                    "correct_s": times[mode],
                    "speedup_vs_dense": speedup,
                    "matrix_bytes": nbytes[mode],
                    "memory_ratio_vs_dense": ratio,
                    "dose_digest": digests[mode],
                }
            )
        checks.setdefault("dose_digest_match", {})[case] = (
            digests["sparse"] == digests["dense"]
        )
        checks.setdefault("speedup", {})[case] = (
            times["dense"] / times["sparse"]
        )
        checks.setdefault("memory_ratio", {})[case] = nbytes[
            "dense"
        ] / max(nbytes["sparse"], 1)
    return table.render(), records, checks


# -- hybrid accuracy on the F1/F2 workloads -----------------------------

CD_PSF = DoubleGaussianPSF(alpha=0.12, beta=2.0, eta=0.74)
CD_PAD = 14.0
CD_THRESHOLD = 0.5


def f1_density_pattern(density: float):
    """The F1 test pattern: a 0.6 µm line in a grating of given duty."""
    pitch = 1.5
    lines = int(CD_PAD / pitch)
    polys = []
    center_index = lines // 2
    center_x = None
    for i in range(lines):
        x = i * pitch
        if i == center_index:
            width = 0.6
            center_x = x + width / 2
        else:
            width = pitch * density
        if width > 0:
            polys.append(Polygon.rectangle(x, 0, x + width, CD_PAD))
    return polys, center_x


def f2_workloads():
    """The F2 convergence workloads: isolated line + pad, dense grating."""
    line_and_pad = [
        Polygon.rectangle(0, 0, 10, CD_PAD),
        Polygon.rectangle(12, 0, 12.6, CD_PAD),
    ]
    grating = [
        Polygon.rectangle(i * 1.2, 0, i * 1.2 + 0.8, CD_PAD)
        for i in range(10)
    ]
    return [
        ("f2_line_pad", line_and_pad, 12.3),
        ("f2_grating", grating, 5 * 1.2 + 0.4),
    ]


def printed_cd(shots, center_x):
    bbox = (0, 0, CD_PAD, CD_PAD)
    frame = RasterFrame.around(bbox, 0.05, margin=6.0)
    sim = ExposureSimulator(CD_PSF, frame)
    image = sim.absorbed_energy(shot_dose_map(shots, frame))
    return measure_linewidth(
        image, frame, CD_THRESHOLD, cut_y=CD_PAD / 2, near_x=center_x
    )


def run_hybrid_cd():
    table = Table(
        ["workload", "dense CD [µm]", "hybrid CD [µm]", "error"],
        title="F11a: hybrid-corrected printed CD vs. dense (F1/F2)",
    )
    cases = []
    for density in (0.0, 0.4, 0.8):
        polys, center_x = f1_density_pattern(density)
        cases.append((f"f1_density_{density:.0%}", polys, center_x))
    cases.extend(f2_workloads())
    records = []
    worst = 0.0
    fracturer = TrapezoidFracturer()
    for name, polys, center_x in cases:
        shots = fracturer.fracture_to_shots(polys)
        dense_cd = printed_cd(
            IterativeDoseCorrector(matrix_mode="dense").correct(
                shots, CD_PSF
            ),
            center_x,
        )
        hybrid_cd = printed_cd(
            IterativeDoseCorrector(matrix_mode="hybrid").correct(
                shots, CD_PSF
            ),
            center_x,
        )
        error = abs(hybrid_cd - dense_cd) / dense_cd
        worst = max(worst, error)
        table.add_row(
            [name, f"{dense_cd:.4f}", f"{hybrid_cd:.4f}", f"{error:.3%}"]
        )
        records.append(
            {
                "workload": name,
                "dense_cd_um": dense_cd,
                "hybrid_cd_um": hybrid_cd,
                "relative_error": error,
            }
        )
    return table.render(), records, worst


def test_f11_pec_scaling(save_table, quick):
    text, records, checks = run_scaling(quick)
    save_table(
        "f11_pec_scaling", text, data={"runs": records, "checks": checks}
    )
    assert checks["sparse_matrix_bit_identical"], (
        "sparse CSR entries diverged from the dense matrix"
    )
    for case, match in checks["dose_digest_match"].items():
        assert match, (
            f"{case}: sparse dose digest diverged from dense "
            "(beyond matvec summation order)"
        )
    for case, ratio in checks["memory_ratio"].items():
        assert ratio >= MEMORY_FLOOR, (
            f"{case}: sparse matrix memory only {ratio:.1f}x below dense "
            f"(floor {MEMORY_FLOOR}x)"
        )
    if quick:
        # CI perf-smoke gate: sparse must never regress behind dense.
        assert checks["speedup"]["5k"] >= 1.0, (
            f"sparse slower than dense on the 5k case: "
            f"{checks['speedup']['5k']:.2f}x"
        )
    else:
        assert checks["speedup"]["20k"] >= SPEEDUP_FLOOR, (
            f"expected >= {SPEEDUP_FLOOR}x sparse speedup at 20k shots, "
            f"got {checks['speedup']['20k']:.2f}x"
        )


def test_f11_hybrid_cd_accuracy(save_table):
    text, records, worst = run_hybrid_cd()
    save_table(
        "f11a_hybrid_cd",
        text,
        data={"workloads": records, "worst_error": worst},
    )
    assert worst <= CD_TOLERANCE, (
        f"hybrid CD error {worst:.3%} exceeds {CD_TOLERANCE:.1%}"
    )

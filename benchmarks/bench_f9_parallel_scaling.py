"""F9 — Parallel field-sharded pipeline scaling.

Serial-vs-parallel wall-clock of the full preparation pipeline
(fracture + iterative proximity correction) through the sharded
execution engine (:mod:`repro.core.executor`), on the two standard
workloads:

* **grating** — a wide line/space grating; shards cleanly by field
  columns (the machine-friendly case).
* **fzp** — a sectored Fresnel zone plate; all-curves fracture-hostile
  geometry (the machine-hostile case).

Every run is also checked shot-for-shot against the serial reference —
the engine's determinism contract (``workers`` never changes the
result) is asserted, not assumed.  The speedup floor is only asserted
with enough physical cores and in full (non ``--quick``) mode; the
table records the measured numbers either way.

Timings are **pool-warm**: the persistent worker pool is spawned (and
its processes forced up) before the clock starts, so the numbers
reflect the steady state of a long-running service rather than
charging one-off process spawn cost to small workloads — the
historical source of a misleading multi-worker "slowdown" on the quick
configurations.
"""

import math
import os
import time

from repro.analysis.tables import Table
from repro.core.executor import shutdown_worker_pool, warm_worker_pool
from repro.core.pipeline import PreparationPipeline
from repro.geometry.polygon import Polygon
from repro.layout.cell import Cell
from repro.layout.layer import Layer
from repro.layout.library import Library
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

WORKER_COUNTS = (1, 2, 4)
SPEEDUP_FLOOR_AT_4 = 1.5


def effective_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def sectored_zone_plate(
    zones: int = 16, sectors: int = 8, points_per_arc: int = 24
) -> Library:
    """Zone plate with each ring split into ``sectors`` arc polygons.

    Sectoring is what a mask shop does to curved data anyway, and it
    gives the field sharder spatially compact work units (the stock
    half-annulus polygons all straddle the plate centre).
    """
    wavelength, focal_length = 0.532, 150.0
    top = Cell("FZP_SECTORED")

    def radius(n: int) -> float:
        return math.sqrt(
            n * wavelength * focal_length + (n * wavelength / 2.0) ** 2
        )

    step = 2.0 * math.pi / sectors
    for n in range(1, zones, 2):
        for k in range(sectors):
            top.add_polygon(
                Polygon.annulus_sector(
                    (0.0, 0.0),
                    radius(n),
                    radius(n + 1),
                    k * step,
                    (k + 1) * step,
                    points_per_arc,
                ),
                Layer(1),
            )
    lib = Library("FZP_SECTORED_LIB")
    lib.add(top)
    return lib


def workloads(quick: bool):
    from repro.layout import generators

    if quick:
        return [
            ("grating", generators.grating(lines=40, length=40.0), 20.0),
            ("fzp", sectored_zone_plate(zones=8), 15.0),
        ]
    return [
        ("grating", generators.grating(lines=300, length=200.0), 25.0),
        ("fzp", sectored_zone_plate(zones=28, sectors=12), 15.0),
    ]


def shot_key(shot):
    t = shot.trapezoid
    return (
        t.y_bottom,
        t.y_top,
        t.x_bottom_left,
        t.x_bottom_right,
        t.x_top_left,
        t.x_top_right,
        shot.dose,
    )


def run_scaling(quick: bool):
    psf = DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74)
    pipe = PreparationPipeline(
        corrector=IterativeDoseCorrector(), psf=psf
    )
    cores = effective_cores()
    table = Table(
        ["workload", "shots", "shards", "workers", "time [s]", "speedup"],
        title=(
            f"F9: serial vs. parallel preparation, pool-warm "
            f"({cores} cores, quick={quick})"
        ),
    )
    speedups = {}
    records = []
    for name, lib, field_size in workloads(quick):
        serial_time = None
        reference = None
        for workers in WORKER_COUNTS:
            if workers > 1:
                warm_worker_pool(workers)
            start = time.perf_counter()
            result = pipe.run(
                lib, workers=workers, field_size=field_size
            )
            elapsed = time.perf_counter() - start
            keys = [shot_key(s) for s in result.job.shots]
            if workers == 1:
                serial_time = elapsed
                reference = keys
            else:
                assert keys == reference, (
                    f"{name}: workers={workers} diverged from serial"
                )
            speedup = serial_time / elapsed
            speedups[(name, workers)] = speedup
            records.append(
                {
                    "workload": name,
                    "shots": len(keys),
                    "shards": result.execution.occupied_shards,
                    "workers": workers,
                    "time_s": elapsed,
                    "speedup": speedup,
                    "pool_warm": workers > 1,
                }
            )
            table.add_row(
                [
                    name,
                    len(keys),
                    result.execution.occupied_shards,
                    workers,
                    elapsed,
                    f"{speedup:.2f}x",
                ]
            )
    return table.render(), speedups, records


def test_f9_parallel_scaling(save_table, quick):
    try:
        text, speedups, records = run_scaling(quick)
    finally:
        shutdown_worker_pool()
    save_table(
        "f9_parallel_scaling",
        text,
        data={"cores": effective_cores(), "runs": records},
    )
    if not quick and effective_cores() >= 4:
        best = max(
            speedups[(name, 4)] for name, _, _ in workloads(quick)
        )
        assert best >= SPEEDUP_FLOOR_AT_4, (
            f"expected >= {SPEEDUP_FLOOR_AT_4}x at 4 workers, "
            f"got {best:.2f}x"
        )


def test_f9_determinism_smoke(quick):
    """Cheap standalone guard: parallel == serial on a small workload."""
    from repro.layout import generators

    pipe = PreparationPipeline()
    lib = generators.grating(lines=20, length=30.0)
    serial = pipe.run(lib, workers=1, field_size=10.0)
    parallel = pipe.run(lib, workers=2, field_size=10.0)
    assert [shot_key(s) for s in serial.job.shots] == [
        shot_key(s) for s in parallel.job.shots
    ]

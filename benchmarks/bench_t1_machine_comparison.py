"""T1 — Machine comparison: writing time vs. pattern density and feature size.

Reconstructs the tutorial's headline table: per-chip writing time on the
raster, vector and shaped-beam architectures across pattern densities and
minimum feature sizes.  Raster is density-independent (chip-area limited);
vector and VSB pay per-figure and per-area costs, so the win flips to
raster for dense fine-featured levels — the classic crossover.
"""


import pytest

from repro.analysis.tables import Table
from repro.core.job import MachineJob
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter

CHIP = 2236.0  # µm -> 5 mm² chip
BASE_DOSE = 5.0  # µC/cm² — a fast 1979 mask resist


def synthetic_job(density: float, feature: float) -> MachineJob:
    """Aggregate job: ``feature``-sized figures at the given density."""
    count = max(1, int(density * CHIP * CHIP / (feature * feature)))
    return MachineJob.synthetic(
        figure_count=count,
        pattern_area=density * CHIP * CHIP,
        bounding_box=(0.0, 0.0, CHIP, CHIP),
        base_dose=BASE_DOSE,
        name=f"d{density}_f{feature}",
    )


def machines():
    return [
        RasterScanWriter(address_unit=0.5, calibration_time=2.0),
        VectorScanWriter(spot_size=0.5),
        ShapedBeamWriter(max_shot=2.0),
    ]


def run_experiment() -> str:
    table = Table(
        ["density", "feature [µm]", "figures", "raster [s]", "vector [s]",
         "VSB [s]", "winner"],
        title="T1: per-chip write time (5 mm² chip, dose 5 µC/cm²)",
    )
    for density in (0.05, 0.1, 0.2, 0.4, 0.6):
        for feature in (0.5, 1.0, 2.0, 4.0):
            job = synthetic_job(density, feature)
            times = {m.name: m.write_time(job).total for m in machines()}
            winner = min(times, key=times.get)
            table.add_row(
                [
                    f"{density:.0%}",
                    feature,
                    job.figure_count(),
                    times["raster"],
                    times["vector"],
                    times["shaped-beam"],
                    winner,
                ]
            )
    return table.render()


def test_t1_machine_comparison(benchmark, save_table):
    text = run_experiment()
    save_table("t1_machine_comparison", text)
    # The crossover must appear: raster wins somewhere, a vectorial
    # machine somewhere else.
    assert "raster" in text.split("winner", 1)[1]
    assert (
        "vector" in text.split("winner", 1)[1]
        or "shaped-beam" in text.split("winner", 1)[1]
    )
    job = synthetic_job(0.2, 2.0)
    writer = VectorScanWriter(spot_size=0.5)
    benchmark(writer.write_time, job)


def test_t1_raster_density_independent(benchmark, save_table):
    """Quantify the density-independence claim for the raster machine."""
    raster = RasterScanWriter(address_unit=0.5, calibration_time=0.0)
    times = [
        raster.write_time(synthetic_job(d, 2.0)).exposure
        for d in (0.05, 0.4)
    ]
    assert times[0] == pytest.approx(times[1], rel=0.01)
    benchmark(raster.write_time, synthetic_job(0.4, 2.0))


def test_t1_pipeline_on_real_geometry(benchmark, save_table):
    """Time the full pipeline (fracture included) on real geometry."""
    from repro.core.pipeline import PreparationPipeline
    from repro.layout import generators

    lib = generators.random_logic(chip_size=200.0, target_density=0.2, seed=1)
    pipe = PreparationPipeline(machines=machines())

    result = benchmark(pipe.run, lib)
    assert result.job.figure_count() > 0

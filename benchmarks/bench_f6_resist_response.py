"""F6 — Resist response: contrast curves and exposure latitude.

Reconstructs the resist-characterization figure: normalized remaining
thickness vs. dose for the three period resists (PMMA, PBS, COP), and
the printed-CD-vs-dose curve of a 1 µm line with its dose latitude.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.fracture.base import Shot
from repro.geometry.rasterize import RasterFrame
from repro.geometry.trapezoid import Trapezoid
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.metrology import dose_latitude, measure_linewidth
from repro.physics.psf import DoubleGaussianPSF
from repro.physics.resist import COP, PBS, PMMA

PSF = DoubleGaussianPSF(alpha=0.12, beta=2.0, eta=0.74)


def run_contrast_curves() -> str:
    table = Table(
        ["dose [µC/cm²]", "PMMA (pos.)", "PBS (pos.)", "COP (neg.)"],
        title="F6: contrast curves — normalized remaining thickness",
    )
    for dose in (0.2, 0.5, 1.0, 2.0, 5.0, 20.0, 50.0, 100.0, 200.0):
        table.add_row(
            [
                dose,
                float(PMMA.remaining_thickness(dose)),
                float(PBS.remaining_thickness(dose)),
                float(COP.remaining_thickness(dose)),
            ]
        )
    return table.render()


def cd_vs_dose(line_width=1.0, doses=np.linspace(0.6, 1.6, 11)):
    """Printed CD of an isolated line across a relative-dose sweep."""
    frame = RasterFrame.around((0, 0, line_width, 12), 0.05, margin=6.0)
    sim = ExposureSimulator(PSF, frame)
    base = sim.absorbed_energy(
        shot_dose_map(
            [Shot(Trapezoid.from_rectangle(0, 0, line_width, 12))], frame
        )
    )
    widths = []
    for dose in doses:
        widths.append(
            measure_linewidth(
                base * dose, frame, 0.5, cut_y=6.0, near_x=line_width / 2
            )
        )
    return list(doses), widths


def run_cd_vs_dose() -> str:
    doses, widths = cd_vs_dose()
    table = Table(
        ["relative dose", "printed CD [µm]"],
        title="F6a: printed CD of a 1.0 µm line vs. dose "
        f"(latitude@±10% = {dose_latitude(doses, widths, 1.0):.2f})",
    )
    for dose, width in zip(doses, widths):
        table.add_row([dose, width if width is not None else "no print"])
    return table.render()


def run_latitude_table() -> str:
    table = Table(
        ["resist", "tone", "D0 [µC/cm²]", "γ", "exposure latitude"],
        title="F6b: resist summary",
    )
    for resist in (PMMA, PBS, COP):
        table.add_row(
            [
                resist.name,
                resist.tone,
                resist.sensitivity,
                resist.contrast,
                resist.exposure_latitude(),
            ]
        )
    return table.render()


def test_f6_resist_response(benchmark, save_table):
    save_table("f6_contrast_curves", run_contrast_curves())
    save_table("f6a_cd_vs_dose", run_cd_vs_dose())
    save_table("f6b_resist_summary", run_latitude_table())
    doses = np.geomspace(0.1, 1000, 500)
    benchmark(PMMA.remaining_thickness, doses)


def test_f6_cd_monotone_in_dose(benchmark, save_table):
    """CD grows monotonically with dose through the print window."""
    doses, widths = cd_vs_dose()
    printed = [w for w in widths if w is not None]
    assert len(printed) >= 5
    assert all(b >= a - 1e-6 for a, b in zip(printed, printed[1:]))
    frame = RasterFrame.around((0, 0, 1, 12), 0.05, margin=6.0)
    sim = ExposureSimulator(PSF, frame)
    shots = [Shot(Trapezoid.from_rectangle(0, 0, 1, 12))]
    benchmark(sim.expose_shots, shots)

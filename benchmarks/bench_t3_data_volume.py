"""T3 — Pattern-data volume: hierarchical source vs. flat machine format.

Reconstructs the data-explosion argument: a hierarchical GDSII (or CIF)
description of an arrayed chip stays small while the flat fractured
machine stream grows with the instance count.  Also reports the RLE
bitmap estimate the raster datapath streams.
"""


from repro.analysis.tables import Table
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators
from repro.layout.cif import dumps_cif
from repro.layout.flatten import flatten_cell
from repro.layout.gdsii import dumps_gdsii
from repro.layout.stats import library_stats
from repro.machine.datapath import data_volume_report


def run_experiment() -> str:
    table = Table(
        ["array", "instances", "GDSII [B]", "CIF [B]", "figures",
         "machine [B]", "RLE [B]", "expansion"],
        title="T3: data volume, hierarchical source vs. flat machine format",
    )
    for blocks in ((2, 2), (4, 4), (8, 8)):
        lib = generators.memory_array(words=8, bits=8, blocks=blocks)
        stats = library_stats(lib)
        gds_bytes = len(dumps_gdsii(lib))
        cif_bytes = len(dumps_cif(lib).encode())
        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        figures = TrapezoidFracturer().fracture(polys)
        bbox = lib.top_cell().bounding_box()
        report = data_volume_report(
            figures,
            source_bytes=gds_bytes,
            width=bbox[2] - bbox[0],
            height=bbox[3] - bbox[1],
            address_unit=0.5,
        )
        table.add_row(
            [
                f"{blocks[0]}x{blocks[1]}",
                stats.flat_polygons,
                gds_bytes,
                cif_bytes,
                report.figure_count,
                report.figure_bytes,
                report.rle_bytes,
                f"{report.expansion_ratio:.1f}x",
            ]
        )
    return table.render()


def test_t3_data_volume(benchmark, save_table):
    text = run_experiment()
    save_table("t3_data_volume", text)
    lib = generators.memory_array(words=8, bits=8, blocks=(4, 4))
    benchmark(dumps_gdsii, lib)


def test_t3_expansion_grows_with_array(save_table, benchmark):
    """Hierarchical source size is ~constant; flat stream scales."""
    small = generators.memory_array(words=8, bits=8, blocks=(2, 2))
    large = generators.memory_array(words=8, bits=8, blocks=(8, 8))
    gds_small = len(dumps_gdsii(small))
    gds_large = len(dumps_gdsii(large))
    # Source grows by only a few bytes (one AREF record).
    assert gds_large < gds_small * 1.2
    stats_small = library_stats(small)
    stats_large = library_stats(large)
    assert stats_large.flat_polygons == stats_small.flat_polygons * 16
    benchmark(library_stats, large)

"""F15 — Out-of-core preparation: bounded memory at full-reticle scale.

One synthetic full reticle (a ``tiles x tiles`` array of the F7 Fresnel
zone plate die, written flat through the incremental GDSII writer) is
prepared twice in *separate subprocesses*:

* **materialized** — ``read_gdsii`` + :meth:`PreparationPipeline.run`,
  the whole flat layout and every shot resident;
* **streaming** — :meth:`PreparationPipeline.run_streaming` over a
  cursor on the same file: one shard row resident, shard results
  spilled through the cache blob store, artifacts assembled shard by
  shard.

Each subprocess reports its own ``ru_maxrss`` twice: once right after
imports + pipeline construction (the *baseline* — interpreter, numpy,
scipy and the geometry stack are ~120 MiB before any work) and once at
exit.  The **delta** is the memory the preparation itself held, which
is what the out-of-core contract bounds; subprocess isolation is
required because ``ru_maxrss`` is a per-process high-water mark that
never goes down.

Floors (asserted in quick mode too, gated again by CI's memory-smoke
job from the JSON sidecar):

* the ``.ebj`` and ``.ebp`` artifacts are byte-identical across the
  two paths (``cmp``-level, not digest-level);
* the streaming peak-RSS delta is at most **0.5x** the materialized
  one;
* the streaming run reports its memory witness (windows, peak window
  bytes, spilled shards) on :class:`ExecutionStats`.
"""

import filecmp
import json
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.tables import Table
from repro.layout.generators import write_full_reticle

#: One writing field per die tile (the die pitch), so every shard row
#: is one row of dies — the streaming window the executor keeps.
FIELD_SIZE = 100.0
#: Pool workers for both paths (identical bytes at any worker count).
WORKERS = 2
TILES_QUICK = 10
TILES_FULL = 14
#: The bounded-memory floor: streaming delta <= 0.5x materialized.
RSS_RATIO_FLOOR = 0.5

_DRIVER = """\
import json, resource, sys, time

def kb():
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return usage // 1024 if sys.platform == "darwin" else usage

mode, gds, outdir, field, workers = (
    sys.argv[1], sys.argv[2], sys.argv[3], float(sys.argv[4]),
    int(sys.argv[5]),
)
from repro.core.jobfile import write_job
from repro.core.pipeline import PreparationPipeline

pipe = PreparationPipeline(field_size=field, machine="vsb", workers=workers)
baseline = kb()
start = time.perf_counter()
extra = {}
if mode == "stream":
    res = pipe.run_streaming(
        gds,
        program_path=outdir + "/job.ebp",
        job_path=outdir + "/job.ebj",
    )
    stats = res.execution
    extra = {
        "stream_windows": stats.stream_windows,
        "peak_window_bytes": stats.peak_window_bytes,
        "shards_spilled": stats.shards_spilled,
        "spill_bytes": stats.spill_bytes,
        "spill_fallbacks": stats.spill_fallbacks,
    }
else:
    from repro.layout.gdsii import read_gdsii

    lib = read_gdsii(gds)
    res = pipe.run(lib, program_path=outdir + "/job.ebp")
    write_job(res.job, outdir + "/job.ebj")
elapsed = time.perf_counter() - start
peak = kb()
print(json.dumps({
    "mode": mode,
    "baseline_kb": baseline,
    "peak_rss_kb": peak,
    "delta_kb": peak - baseline,
    "seconds": round(elapsed, 3),
    "figures": res.job.figure_count(),
    "digest": res.job.digest(),
    **extra,
}))
"""


def _run_driver(mode: str, gds: Path, outdir: Path, driver: Path) -> dict:
    outdir.mkdir(parents=True, exist_ok=True)
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, str(driver), mode, str(gds), str(outdir),
            str(FIELD_SIZE), str(WORKERS),
        ],
        env=env,
        capture_output=True,
        text=True,
        check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def test_f15_out_of_core(save_table, quick, tmp_path):
    tiles = TILES_QUICK if quick else TILES_FULL
    gds = tmp_path / "reticle.gds"
    gds_bytes = write_full_reticle(gds, tiles=tiles)
    driver = tmp_path / "driver.py"
    driver.write_text(_DRIVER)

    runs = {
        mode: _run_driver(mode, gds, tmp_path / mode, driver)
        for mode in ("materialize", "stream")
    }
    mat, stream = runs["materialize"], runs["stream"]

    # Determinism floor: cmp-identical artifacts, not just equal digests.
    identical = all(
        filecmp.cmp(
            tmp_path / "materialize" / name,
            tmp_path / "stream" / name,
            shallow=False,
        )
        for name in ("job.ebj", "job.ebp")
    )
    assert identical, "streaming artifacts differ from the in-memory path"
    assert stream["digest"] == mat["digest"]
    assert stream["figures"] == mat["figures"]

    # The memory witness must be present and meaningful.
    assert stream["stream_windows"] == tiles
    assert stream["shards_spilled"] >= tiles * tiles
    assert stream["peak_window_bytes"] > 0
    assert stream["spill_fallbacks"] == 0

    # The bounded-memory floor.
    ratio = stream["delta_kb"] / mat["delta_kb"]
    assert ratio <= RSS_RATIO_FLOOR, (
        f"streaming held {stream['delta_kb']} KiB over baseline vs "
        f"{mat['delta_kb']} KiB materialized (ratio {ratio:.2f} > "
        f"{RSS_RATIO_FLOOR})"
    )
    assert stream["peak_rss_kb"] < mat["peak_rss_kb"]

    table = Table(
        ["path", "peak RSS [MiB]", "prep RSS [MiB]", "time [s]", "figures"],
        title=(
            f"F15 — out-of-core full-reticle prep ({tiles}x{tiles} FZP "
            f"dies, {gds_bytes:,} B GDSII, field {FIELD_SIZE:g} um, "
            f"{WORKERS} workers)"
        ),
    )
    for label, run in (("materialized", mat), ("streaming", stream)):
        table.add_row([
            label,
            run["peak_rss_kb"] // 1024,
            run["delta_kb"] // 1024,
            run["seconds"],
            run["figures"],
        ])
    table.add_row(["ratio", "", f"{ratio:.2f} (floor <= {RSS_RATIO_FLOOR})", "", ""])
    save_table(
        "F15_out_of_core",
        table.render(),
        data={
            "tiles": tiles,
            "gds_bytes": gds_bytes,
            "field_size": FIELD_SIZE,
            "workers": WORKERS,
            "identical": identical,
            "rss_delta_ratio": round(ratio, 4),
            "rss_ratio_floor": RSS_RATIO_FLOOR,
            "materialized": mat,
            "streaming": stream,
        },
    )

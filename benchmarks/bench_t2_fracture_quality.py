"""T2 — Fracture quality: figure count and sliver fraction by strategy.

Compares the trapezoid, rectangle (staircase) and VSB-shot fracturers on
the standard workload suite, plus the two ablations DESIGN.md calls out:
the vertical-merge optimization and the sliver-avoidance heuristic, and a
database-grid resolution sweep.
"""


from repro.analysis.tables import Table
from repro.fracture.quality import analyze_figures
from repro.fracture.rectangles import RectangleFracturer
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators
from repro.layout.flatten import flatten_cell


def workload_polygons():
    workloads = []
    for name, lib in [
        ("grating", generators.grating(lines=30)),
        ("contacts", generators.contact_array(columns=16, rows=16)),
        ("fzp", generators.fresnel_zone_plate(zones=12)),
        ("checkerboard", generators.checkerboard(cells=8)),
        ("logic", generators.random_logic(chip_size=80.0, seed=2)),
    ]:
        flat = flatten_cell(lib.top_cell())
        workloads.append((name, [p for v in flat.values() for p in v]))
    return workloads


FRACTURERS = [
    ("trapezoid", TrapezoidFracturer()),
    ("rect a=0.25", RectangleFracturer(address_unit=0.25)),
    ("rect a=0.05", RectangleFracturer(address_unit=0.05)),
    ("vsb 2.0", ShotFracturer(max_shot=2.0)),
    ("vsb greedy", ShotFracturer(max_shot=2.0, avoid_slivers=False)),
]


def run_experiment() -> str:
    table = Table(
        ["workload", "fracturer", "figures", "slivers", "rect frac",
         "area err"],
        title="T2: fracture quality by strategy (sliver threshold 0.1 µm)",
    )
    for name, polys in workload_polygons():
        reference = sum(
            t.area() for t in TrapezoidFracturer().fracture(polys)
        )
        for label, fracturer in FRACTURERS:
            figs = fracturer.fracture(polys)
            report = analyze_figures(figs, reference_area=reference)
            table.add_row(
                [
                    name,
                    label,
                    report.figure_count,
                    f"{report.sliver_fraction:.1%}",
                    f"{report.rectangle_fraction:.0%}",
                    report.area_error,
                ]
            )
    return table.render()


def run_merge_ablation() -> str:
    table = Table(
        ["workload", "merged figures", "raw figures", "reduction"],
        title="T2a: vertical-merge ablation",
    )
    for name, polys in workload_polygons():
        merged = len(TrapezoidFracturer(merge=True).fracture(polys))
        raw = len(TrapezoidFracturer(merge=False).fracture(polys))
        table.add_row([name, merged, raw, f"{1 - merged / raw:.1%}"])
    return table.render()


def run_grid_ablation() -> str:
    table = Table(
        ["grid [µm]", "fzp figures", "fzp area err"],
        title="T2b: database-grid resolution ablation (FZP workload)",
    )
    lib = generators.fresnel_zone_plate(zones=12)
    flat = flatten_cell(lib.top_cell())
    polys = [p for v in flat.values() for p in v]
    reference = sum(p.area() for p in polys)
    for grid in (1e-2, 1e-3, 1e-4):
        figs = TrapezoidFracturer(grid=grid).fracture(polys)
        report = analyze_figures(figs, reference_area=reference)
        table.add_row([grid, report.figure_count, report.area_error])
    return table.render()


def test_t2_fracture_quality(benchmark, save_table):
    save_table("t2_fracture_quality", run_experiment())
    lib = generators.fresnel_zone_plate(zones=12)
    flat = flatten_cell(lib.top_cell())
    polys = [p for v in flat.values() for p in v]
    benchmark(TrapezoidFracturer().fracture, polys)


def test_t2_merge_ablation(benchmark, save_table):
    save_table("t2a_merge_ablation", run_merge_ablation())
    lib = generators.checkerboard(cells=8)
    flat = flatten_cell(lib.top_cell())
    polys = [p for v in flat.values() for p in v]
    benchmark(TrapezoidFracturer(merge=False).fracture, polys)


def test_t2_grid_ablation(benchmark, save_table):
    save_table("t2b_grid_ablation", run_grid_ablation())
    lib = generators.grating(lines=30)
    flat = flatten_cell(lib.top_cell())
    polys = [p for v in flat.values() for p in v]
    benchmark(RectangleFracturer(address_unit=0.25).fracture, polys)

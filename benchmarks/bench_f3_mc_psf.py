"""F3 — Monte-Carlo PSF derivation: radial profiles and (α, β, η) vs. kV.

Runs the scattering simulator at 10/20/50 kV, fits the double-Gaussian
proximity parameters, and compares them against the empirical literature
formulas the PSF module ships.  The key shape: β scales as ~E^1.75 and η
is roughly energy-independent.
"""


from repro.analysis.tables import Table
from repro.physics.montecarlo import MonteCarloSimulator, fit_double_gaussian
from repro.physics.psf import backscatter_coefficient, backscatter_range

ELECTRONS = 8000


def run_experiment() -> str:
    table = Table(
        ["kV", "MC β [µm]", "lit. β [µm]", "MC η", "lit. η",
         "backscatter yield"],
        title=f"F3: Monte-Carlo PSF parameters ({ELECTRONS} electrons/point)",
    )
    for energy in (10.0, 20.0, 50.0):
        sim = MonteCarloSimulator(energy_kev=energy, seed=100)
        result = sim.run(electrons=ELECTRONS)
        fit = fit_double_gaussian(result.bin_centers(), result.density)
        table.add_row(
            [
                energy,
                fit.beta,
                backscatter_range(energy),
                fit.eta,
                backscatter_coefficient(),
                result.backscatter_yield,
            ]
        )
    return table.render()


def run_radial_profile() -> str:
    table = Table(
        ["radius [µm]", "density @10 kV", "density @20 kV", "density @50 kV"],
        title="F3a: radial deposited-energy density [keV/µm²/electron]",
    )
    results = {}
    for energy in (10.0, 20.0, 50.0):
        sim = MonteCarloSimulator(
            energy_kev=energy, seed=100, r_min=1e-3, r_max=40.0, bins=32
        )
        results[energy] = sim.run(electrons=4000)
    centers = results[20.0].bin_centers()
    for i in range(0, len(centers), 4):
        table.add_row(
            [centers[i]]
            + [results[e].density[i] for e in (10.0, 20.0, 50.0)]
        )
    return table.render()


def test_f3_mc_psf(benchmark, save_table):
    save_table("f3_mc_psf", run_experiment())
    sim = MonteCarloSimulator(energy_kev=20.0, seed=5)
    benchmark.pedantic(sim.run, args=(2000,), rounds=3, iterations=1)


def test_f3_beta_scaling(benchmark, save_table):
    """β(50 kV)/β(10 kV) should approach the (50/10)^1.75 power law."""
    save_table("f3a_radial_profile", run_radial_profile())
    fits = {}
    for energy in (10.0, 50.0):
        sim = MonteCarloSimulator(energy_kev=energy, seed=200)
        result = sim.run(electrons=6000)
        fits[energy] = fit_double_gaussian(
            result.bin_centers(), result.density
        )
    ratio = fits[50.0].beta / fits[10.0].beta
    expected = (50.0 / 10.0) ** 1.75
    # MC statistics + fit slack: demand the right order of magnitude.
    assert expected / 3 < ratio < expected * 3
    sim = MonteCarloSimulator(energy_kev=10.0, seed=5)
    benchmark.pedantic(sim.run, args=(1000,), rounds=3, iterations=1)

"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md).  Result tables are printed to stdout and
written to ``benchmarks/results/<experiment>.txt`` so that EXPERIMENTS.md
can reference them; every saved table also writes a machine-readable
``benchmarks/results/BENCH_<experiment>.json`` sidecar (workload
numbers, timings, peak RSS) so the performance trajectory is trackable
across PRs without parsing text tables.
"""

from __future__ import annotations

import json
import resource
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    """``--quick``: reduced workloads for the CI smoke job."""
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on reduced workloads (CI smoke mode)",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the suite runs in ``--quick`` (reduced) mode."""
    return request.config.getoption("--quick")


def peak_rss_kb() -> int:
    """Peak resident set size of this process so far [KiB]."""
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        usage //= 1024
    return int(usage)


@pytest.fixture(scope="session")
def save_table(request):
    """Persist (and echo) an experiment's result table.

    ``save_table(experiment_id, text, data=...)`` writes the rendered
    table to ``results/<experiment_id>.txt`` and a JSON record to
    ``results/BENCH_<experiment_id>.json``.  ``data`` carries the
    experiment's structured numbers (workloads, times, speedups); the
    table text and the process's peak RSS are always included.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    is_quick = request.config.getoption("--quick")

    def _save(experiment_id: str, text: str, data=None) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        record = {
            "experiment": experiment_id,
            "quick": is_quick,
            "peak_rss_kb": peak_rss_kb(),
            "table": text.splitlines(),
            "data": data,
        }
        json_path = RESULTS_DIR / f"BENCH_{experiment_id}.json"
        json_path.write_text(json.dumps(record, indent=2) + "\n")
        print(f"\n=== {experiment_id} ===")
        print(text)

    return _save

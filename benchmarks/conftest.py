"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one table or figure of the reconstructed
evaluation (see DESIGN.md).  Result tables are printed to stdout and
written to ``benchmarks/results/<experiment>.txt`` so that EXPERIMENTS.md
can reference them.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def pytest_addoption(parser):
    """``--quick``: reduced workloads for the CI smoke job."""
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on reduced workloads (CI smoke mode)",
    )


@pytest.fixture(scope="session")
def quick(request):
    """True when the suite runs in ``--quick`` (reduced) mode."""
    return request.config.getoption("--quick")


@pytest.fixture(scope="session")
def save_table():
    """Persist (and echo) an experiment's result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(experiment_id: str, text: str) -> None:
        path = RESULTS_DIR / f"{experiment_id}.txt"
        path.write_text(text + "\n")
        print(f"\n=== {experiment_id} ===")
        print(text)

    return _save

"""F12 — Fracture kernel scaling and hierarchy reuse.

Two effects introduced by the vectorized geometry kernel PR:

* **Kernel speedup** — the NumPy exact-integer scanline engine
  (``kernel="fast"``) vs. the pure-Python ``Fraction`` reference
  (``kernel="exact"``) on the FZP (all-curves) and memory-array
  (Manhattan, array-dominated) workloads, at growing polygon counts,
  plus two workloads the widened kernel must no longer degrade on:
  geometry translated to |coord| ~ 2**31 database units (beyond the
  old 2**24 order-embedding limit) and a crossing-dense slanted mesh
  (every slab bounded by rational crossing ys).  The two kernels must
  agree **bitwise** on every workload and report **zero** fallbacks
  (counters land in the BENCH_F12 JSON rows); in full mode the fast
  kernel must clear a 3x floor on the large cases, in ``--quick``
  (CI) mode it must simply never be slower.

* **Hierarchy reuse through the real pipeline** — ``hierarchy="cells"``
  vs. flat preparation on memory arrays, both through
  :class:`~repro.core.pipeline.PreparationPipeline`.  To isolate the
  *reuse* effect from the kernel speedup the comparison holds the
  kernel fixed (the Fraction reference, where fracture dominates —
  the F8c setting); in full mode the 8x8 array must clear a 10x floor.
  The fast-kernel pipeline numbers are reported alongside.
"""

import time

from repro.analysis.tables import Table
from repro.core.pipeline import PreparationPipeline
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.boolean import boolean_trapezoids
from repro.geometry.scanline_fast import KernelFallbacks
from repro.layout import generators
from repro.layout.flatten import flatten_cell


def _flat_polygons(library):
    flat = flatten_cell(library.top_cell())
    return [p for v in flat.values() for p in v]


def _best_of(fn, repeats):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def _triangle_band(n):
    """n disjoint slanted triangles sharing one y band — the worst case
    for crossing-candidate generation (every edge pair y-overlaps, none
    cross), guarding the batched-pruning path against regressions."""
    from repro.geometry.polygon import Polygon
    from repro.layout.cell import Cell
    from repro.layout.library import Library

    cell = Cell("TRIBAND")
    for i in range(n):
        cell.add_polygon(
            Polygon(
                [(i * 3.0, 0.0), (i * 3.0 + 2.0, 0.1), (i * 3.0 + 1.0, 10.0)]
            )
        )
    lib = Library("TRIBAND_LIB")
    lib.add(cell)
    return lib


def _translated(polys, dx, dy):
    from repro.geometry.polygon import Polygon

    return [
        Polygon([(v.x + dx, v.y + dy) for v in p.vertices]) for p in polys
    ]


def _crossing_mesh(clusters):
    """A grid of clusters, each two mutually crossing slanted triangles
    — every cluster slab is bounded by rational crossing ys, so nearly
    the whole sweep runs on the vectorized rational-slab path (which the
    old kernel handed to the scalar ``ScanEdge``+``Fraction`` loop)."""
    import math as _math

    from repro.geometry.polygon import Polygon

    cols = max(1, int(_math.isqrt(clusters)))
    polys = []
    for i in range(clusters):
        x = (i % cols) * 50.0
        y = (i // cols) * 50.0
        polys.append(
            Polygon(
                [
                    (x, y + 1.0 + (i % 5)),
                    (x + 40.0, y + 9.0 + (i % 7)),
                    (x + 19.0, y + 37.0),
                ]
            )
        )
        polys.append(
            Polygon(
                [
                    (x + 3.0, y + 30.0 - (i % 4)),
                    (x + 38.0, y + 27.0),
                    (x + 17.0 + (i % 3), y - 2.0),
                ]
            )
        )
    return polys


#: Layout-unit offset that puts coordinates at ~2**31 database units
#: (default 1e-3 grid) — far beyond the old 2**24 embedding limit.
_FAR_OFFSET = (1 << 31) * 1e-3


def kernel_workloads(quick):
    if quick:
        libs = [
            ("fzp z8", generators.fresnel_zone_plate(zones=8, points_per_arc=32)),
            ("mem 2x2", generators.memory_array(words=8, bits=8, blocks=(2, 2))),
            ("tri band 400", _triangle_band(400)),
        ]
        extra = [
            (
                "far band 300 @2^31",
                _translated(
                    _flat_polygons(_triangle_band(300)),
                    _FAR_OFFSET,
                    -_FAR_OFFSET,
                ),
            ),
            ("cross mesh 100", _crossing_mesh(100)),
        ]
    else:
        libs = [
            ("fzp z8", generators.fresnel_zone_plate(zones=8, points_per_arc=32)),
            ("fzp z20", generators.fresnel_zone_plate(zones=20, points_per_arc=64)),
            ("mem 2x2", generators.memory_array(words=8, bits=8, blocks=(2, 2))),
            ("mem 4x4", generators.memory_array(words=8, bits=8, blocks=(4, 4))),
            ("mem 8x8", generators.memory_array(words=8, bits=8, blocks=(8, 8))),
            ("tri band 2k", _triangle_band(2000)),
        ]
        extra = [
            (
                "far band 2k @2^31",
                _translated(
                    _flat_polygons(_triangle_band(2000)),
                    _FAR_OFFSET,
                    -_FAR_OFFSET,
                ),
            ),
            ("cross mesh 1k", _crossing_mesh(1000)),
        ]
    return [(name, _flat_polygons(lib)) for name, lib in libs] + extra


def run_kernel_scaling(quick):
    repeats = 1 if quick else 2
    table = Table(
        ["workload", "polygons", "figures", "exact [s]", "fast [s]",
         "speedup", "fallbacks"],
        title="F12: scanline kernel — Fraction reference vs. vectorized "
        "exact-integer (bitwise-identical output, zero fallbacks)",
    )
    rows = []
    for name, polys in kernel_workloads(quick):
        t_exact, exact = _best_of(
            lambda: boolean_trapezoids(polys, [], "or", kernel="exact"),
            repeats,
        )
        t_fast, fast = _best_of(
            lambda: boolean_trapezoids(polys, [], "or", kernel="fast"),
            repeats,
        )
        # The contract under test: bit-identical trapezoids, with every
        # slab swept on the vectorized path (one extra counted run;
        # the counters accumulate, so they stay out of the timed loop).
        assert fast == exact, f"kernel outputs diverge on {name}"
        fallbacks = KernelFallbacks()
        boolean_trapezoids(polys, [], "or", kernel="fast",
                           fallbacks=fallbacks)
        speedup = t_exact / t_fast
        rows.append(
            {
                "workload": name,
                "polygons": len(polys),
                "figures": len(exact),
                "exact_s": t_exact,
                "fast_s": t_fast,
                "speedup": speedup,
                "coord_fallbacks": fallbacks.coord_limit,
                "slab_fallbacks": fallbacks.rational_slab,
            }
        )
        table.add_row(
            [name, len(polys), len(exact), t_exact, t_fast,
             f"{speedup:.1f}x", fallbacks.total()]
        )
    # Floors: CI (--quick) demands "never slower"; the full run demands
    # a 3x win on every large workload.  Every workload — including the
    # 2**31-coordinate and crossing-dense ones — must run entirely on
    # the fast path: the old kernel silently fell back on both.
    for row in rows:
        assert row["coord_fallbacks"] == 0 and row["slab_fallbacks"] == 0, (
            f"fast kernel degraded on {row['workload']}: "
            f"{row['coord_fallbacks']} coord-limit, "
            f"{row['slab_fallbacks']} rational-slab fallbacks"
        )
        assert row["speedup"] >= 1.0, (
            f"fast kernel slower than reference on {row['workload']}: "
            f"{row['speedup']:.2f}x"
        )
    if not quick:
        for row in rows:
            if row["polygons"] >= 1000 or row["figures"] >= 1000:
                assert row["speedup"] >= 3.0, (
                    f"fast kernel below the 3x floor on "
                    f"{row['workload']}: {row['speedup']:.2f}x"
                )
    return table.render(), rows


def hierarchy_cases(quick):
    if quick:
        return [(2, 2)]
    return [(2, 2), (4, 4), (8, 8)]


def run_hierarchy_reuse(quick):
    table = Table(
        ["array", "figures", "flat [s]", "cells [s]", "reuse win",
         "fast flat [s]", "fast cells [s]"],
        title="F12a: pipeline hierarchy reuse — flat vs. cells "
        "(reference kernel isolates reuse; fast-kernel columns for "
        "the shipping configuration)",
    )
    exact_pipe = PreparationPipeline(
        fracturer=TrapezoidFracturer(kernel="exact")
    )
    fast_pipe = PreparationPipeline()
    rows = []
    for blocks in hierarchy_cases(quick):
        lib = generators.memory_array(words=8, bits=8, blocks=blocks)
        t0 = time.perf_counter()
        flat = exact_pipe.run(lib, hierarchy="flat")
        t1 = time.perf_counter()
        cells = exact_pipe.run(lib, hierarchy="cells")
        t2 = time.perf_counter()
        fast_flat = fast_pipe.run(lib, hierarchy="flat")
        t3 = time.perf_counter()
        fast_cells = fast_pipe.run(lib, hierarchy="cells")
        t4 = time.perf_counter()
        assert cells.job.figure_count() == flat.job.figure_count()
        assert fast_cells.job.figure_count() == flat.job.figure_count()
        assert cells.execution.instances_reused > 0
        win = (t1 - t0) / (t2 - t1)
        rows.append(
            {
                "blocks": f"{blocks[0]}x{blocks[1]}",
                "figures": cells.job.figure_count(),
                "flat_s": t1 - t0,
                "cells_s": t2 - t1,
                "reuse_win": win,
                "fast_flat_s": t3 - t2,
                "fast_cells_s": t4 - t3,
                "instances_reused": cells.execution.instances_reused,
            }
        )
        table.add_row(
            [
                f"{blocks[0]}x{blocks[1]}",
                cells.job.figure_count(),
                t1 - t0,
                t2 - t1,
                f"{win:.1f}x",
                t3 - t2,
                t4 - t3,
            ]
        )
    for row in rows:
        assert row["reuse_win"] >= 1.0, (
            f"cells mode slower than flat on {row['blocks']}: "
            f"{row['reuse_win']:.2f}x"
        )
    if not quick:
        big = [r for r in rows if r["blocks"] == "8x8"]
        assert big and big[0]["reuse_win"] >= 10.0, (
            "hierarchy reuse below the 10x floor on the 8x8 array: "
            f"{big[0]['reuse_win']:.2f}x"
        )
    return table.render(), rows


def test_f12_kernel_scaling(quick, save_table, benchmark):
    text, rows = run_kernel_scaling(quick)
    save_table("f12_kernel_scaling", text, data={"rows": rows})
    polys = _flat_polygons(
        generators.fresnel_zone_plate(zones=8, points_per_arc=32)
    )
    benchmark(boolean_trapezoids, polys, [], "or")


def test_f12a_hierarchy_reuse(quick, save_table, benchmark):
    text, rows = run_hierarchy_reuse(quick)
    save_table("f12a_hierarchy_reuse", text, data={"rows": rows})
    lib = generators.memory_array(words=8, bits=8, blocks=(2, 2))
    pipe = PreparationPipeline(hierarchy="cells")
    benchmark(pipe.run, lib)

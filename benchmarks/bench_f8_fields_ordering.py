"""F8 — Field partitioning and shot ordering (extension experiments).

Two data-preparation effects downstream of fracture:

* **Field partitioning** — shots crossing deflection-field boundaries are
  split; the boundary-piece fraction vs. field size measures how much
  geometry is exposed to stitching errors.
* **Shot ordering** — deflection settling with a long-jump penalty, for
  unordered / scanline / nearest-neighbour visit orders.

Also regenerates the registration-accuracy curve (mark detection error
vs. signal noise) that feeds the F4 overlay budget.
"""

import random


from repro.analysis.tables import Table
from repro.core.fields import (
    deflection_travel,
    order_shots,
    partition_fields,
    travel_settle_time,
)
from repro.core.pipeline import PreparationPipeline
from repro.layout import generators
from repro.machine.registration import detection_error_model


def logic_job():
    lib = generators.random_logic(chip_size=300.0, target_density=0.25, seed=4)
    return PreparationPipeline().run(lib).job


def run_partitioning() -> str:
    job = logic_job()
    table = Table(
        ["field size [µm]", "fields", "shots", "boundary pieces",
         "boundary fraction"],
        title="F8: field partitioning of a 300 µm logic chip",
    )
    base = job.figure_count()
    for field_size in (50.0, 100.0, 200.0, 400.0):
        fielded = partition_fields(job, field_size)
        total = sum(len(s) for s in fielded.fields.values())
        table.add_row(
            [
                field_size,
                fielded.occupied_fields(),
                total,
                total - base,
                f"{fielded.boundary_shot_fraction():.1%}",
            ]
        )
    return table.render()


def run_ordering() -> str:
    job = logic_job()
    shots = list(job.shots)
    random.Random(0).shuffle(shots)
    table = Table(
        ["order", "deflection travel [µm]", "settle time [µs]"],
        title=f"F8a: shot-ordering ablation ({len(shots)} shots, "
        "long-jump penalty 4x beyond 50 µm)",
    )
    for strategy in ("none", "scanline", "nearest"):
        ordered = order_shots(shots, strategy)
        table.add_row(
            [
                strategy,
                deflection_travel(ordered),
                travel_settle_time(ordered) * 1e6,
            ]
        )
    return table.render()


def run_registration() -> str:
    table = Table(
        ["signal noise (RMS/amplitude)", "detection σ [µm]"],
        title="F8b: mark-detection error vs. noise (0.1 µm beam)",
    )
    for noise in (0.005, 0.01, 0.02, 0.05, 0.1):
        sigma = detection_error_model(
            beam_size=0.1, noise=noise, scans=150, seed=2
        )
        table.add_row([noise, sigma])
    return table.render()


def test_f8_partitioning(benchmark, save_table):
    save_table("f8_field_partitioning", run_partitioning())
    job = logic_job()
    benchmark(partition_fields, job, 100.0)


def test_f8_ordering(benchmark, save_table):
    text = run_ordering()
    save_table("f8a_shot_ordering", text)
    job = logic_job()
    shots = list(job.shots)
    random.Random(0).shuffle(shots)
    # Ordering must beat the shuffled baseline on travel.
    assert deflection_travel(order_shots(shots, "nearest")) < deflection_travel(
        shots
    )
    benchmark(order_shots, shots, "nearest")


def run_hierarchical() -> str:
    import time

    from repro.core.hierarchical import fracture_hierarchical
    from repro.fracture.trapezoidal import TrapezoidFracturer
    from repro.layout.flatten import flatten_cell

    table = Table(
        ["array", "figures", "flat fracture [s]", "hierarchical [s]",
         "speedup"],
        title="F8c: hierarchical vs. flat fracturing (memory arrays)",
    )
    for blocks in ((2, 2), (4, 4), (8, 8)):
        lib = generators.memory_array(words=8, bits=8, blocks=blocks)
        flat = flatten_cell(lib.top_cell())
        polys = [p for v in flat.values() for p in v]
        start = time.perf_counter()
        flat_figs = TrapezoidFracturer().fracture(polys)
        flat_time = time.perf_counter() - start
        start = time.perf_counter()
        hier = fracture_hierarchical(lib)
        hier_time = time.perf_counter() - start
        assert hier.figure_count() == len(flat_figs)
        table.add_row(
            [
                f"{blocks[0]}x{blocks[1]}",
                hier.figure_count(),
                flat_time,
                hier_time,
                f"{flat_time / hier_time:.1f}x",
            ]
        )
    return table.render()


def test_f8_hierarchical_fracture(benchmark, save_table):
    from repro.core.hierarchical import fracture_hierarchical

    save_table("f8c_hierarchical_fracture", run_hierarchical())
    lib = generators.memory_array(words=8, bits=8, blocks=(4, 4))
    benchmark(fracture_hierarchical, lib)


def test_f8_registration(benchmark, save_table):
    save_table("f8b_registration", run_registration())
    quiet = detection_error_model(beam_size=0.1, noise=0.01, scans=60, seed=2)
    loud = detection_error_model(beam_size=0.1, noise=0.1, scans=60, seed=2)
    assert loud > quiet
    benchmark(
        detection_error_model, 0.1, 0.05, 40
    )

"""F2 — PEC convergence: exposure error vs. iteration.

Reconstructs the dose-correction convergence figure: maximum relative
exposure error at each iteration of the self-consistent solver, for an
easy case (isolated line + pad) and a hard one (dense grating).  Also
compares the one-shot matrix solve and ablates the representative-point
choice (centroid vs. bbox centre) and relaxation factor.
"""


from repro.analysis.tables import Table
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.geometry.polygon import Polygon
from repro.layout import generators
from repro.layout.flatten import flatten_cell
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.pec.dose_matrix import MatrixDoseCorrector
from repro.pec.report import correction_report
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.12, beta=2.0, eta=0.74)


def line_and_pad_shots():
    lib = generators.isolated_line_with_pad()
    flat = flatten_cell(lib.top_cell())
    polys = [p for v in flat.values() for p in v]
    return TrapezoidFracturer().fracture_to_shots(polys)


def dense_grating_shots():
    polys = [Polygon.rectangle(i * 1.2, 0, i * 1.2 + 0.8, 20) for i in range(24)]
    return TrapezoidFracturer().fracture_to_shots(polys)


def run_convergence() -> str:
    table = Table(
        ["iteration", "line+pad max err", "grating max err"],
        title="F2: self-consistent dose iteration convergence",
    )
    traces = []
    for shots in (line_and_pad_shots(), dense_grating_shots()):
        corrector = IterativeDoseCorrector(max_iterations=10, tolerance=0.0)
        corrector.correct(shots, PSF)
        traces.append(corrector.last_trace.max_errors)
    for i in range(10):
        table.add_row([i, traces[0][i], traces[1][i]])
    return table.render()


def run_method_comparison() -> str:
    table = Table(
        ["method", "spread line+pad", "spread grating"],
        title="F2a: correction method comparison (exposure spread)",
    )
    methods = [
        ("uncorrected", None),
        ("iterative k=5", IterativeDoseCorrector(max_iterations=5)),
        ("iterative k=30", IterativeDoseCorrector(max_iterations=30)),
        ("matrix solve", MatrixDoseCorrector()),
        (
            "iterative, bbox centre",
            IterativeDoseCorrector(max_iterations=30, sample_mode="center"),
        ),
        (
            "iterative, relaxed 0.5",
            IterativeDoseCorrector(max_iterations=30, relaxation=0.5),
        ),
    ]
    for label, corrector in methods:
        spreads = []
        for shots in (line_and_pad_shots(), dense_grating_shots()):
            corrected = (
                corrector.correct(shots, PSF) if corrector else shots
            )
            spreads.append(correction_report(corrected, PSF).spread)
        table.add_row([label, spreads[0], spreads[1]])
    return table.render()


def test_f2_convergence(benchmark, save_table):
    save_table("f2_pec_convergence", run_convergence())
    shots = dense_grating_shots()
    corrector = IterativeDoseCorrector(max_iterations=10)
    benchmark(corrector.correct, shots, PSF)


def test_f2_method_comparison(benchmark, save_table):
    save_table("f2a_method_comparison", run_method_comparison())
    shots = dense_grating_shots()
    benchmark(MatrixDoseCorrector().correct, shots, PSF)


def run_quantization_ablation() -> str:
    from repro.pec.quantize import dose_classes, quantize_doses

    table = Table(
        ["dose classes", "spread line+pad", "spread grating",
         "worst snap"],
        title="F2b: dose-class quantization (geometric classes 0.5–4.0)",
    )
    corrected = {
        "line": IterativeDoseCorrector().correct(line_and_pad_shots(), PSF),
        "grating": IterativeDoseCorrector().correct(
            dense_grating_shots(), PSF
        ),
    }
    for levels in (4, 8, 16, 64):
        classes = dose_classes(levels=levels)
        spreads = []
        worst = 0.0
        for shots in corrected.values():
            quantized, step = quantize_doses(shots, classes)
            worst = max(worst, step)
            spreads.append(correction_report(quantized, PSF).spread)
        table.add_row([levels, spreads[0], spreads[1], worst])
    return table.render()


def test_f2_quantization(benchmark, save_table):
    from repro.pec.quantize import dose_classes, quantize_doses

    save_table("f2b_dose_quantization", run_quantization_ablation())
    shots = IterativeDoseCorrector().correct(dense_grating_shots(), PSF)
    classes = dose_classes(levels=16)
    benchmark(quantize_doses, shots, classes)


def test_f2_geometric_convergence(save_table, benchmark):
    """Errors must fall geometrically (factor >= 2 per iteration early)."""
    corrector = IterativeDoseCorrector(max_iterations=6, tolerance=0.0)
    corrector.correct(dense_grating_shots(), PSF)
    errors = corrector.last_trace.max_errors
    assert errors[3] < errors[0] / 4
    benchmark(
        IterativeDoseCorrector(max_iterations=3).correct,
        line_and_pad_shots(),
        PSF,
    )

"""F7 — Case study: Fresnel zone plate through the full pipeline.

An all-curves workload (the kind e-beam was prized for): a 20-zone
Fresnel zone plate is fractured for each machine vocabulary, proximity
corrected, timed on all three writers, and verified by exposure
simulation.  The table reports figures, write time and printed fidelity
per machine path.
"""


from repro.analysis.tables import Table
from repro.core.metrics import fidelity_report
from repro.core.pipeline import PreparationPipeline
from repro.fracture.rectangles import RectangleFracturer
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators
from repro.layout.flatten import flatten_cell
from repro.machine.raster import RasterScanWriter
from repro.machine.vector import VectorScanWriter
from repro.machine.vsb import ShapedBeamWriter
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

PSF = DoubleGaussianPSF(alpha=0.12, beta=2.0, eta=0.74)
ZONES = 20


def fzp_polygons():
    lib = generators.fresnel_zone_plate(zones=ZONES, points_per_arc=48)
    flat = flatten_cell(lib.top_cell())
    return [p for v in flat.values() for p in v]


PATHS = [
    ("raster/rect", RectangleFracturer(address_unit=0.25),
     RasterScanWriter(address_unit=0.25, calibration_time=2.0)),
    ("vector/trap", TrapezoidFracturer(),
     VectorScanWriter(spot_size=0.25)),
    ("VSB/shots", ShotFracturer(max_shot=2.0),
     ShapedBeamWriter(max_shot=2.0)),
]


def run_experiment() -> str:
    polys = fzp_polygons()
    table = Table(
        ["machine path", "figures", "write time [s]", "printed/design area",
         "pattern err"],
        title=f"F7: {ZONES}-zone Fresnel zone plate, full pipeline "
        "(dose-corrected)",
    )
    for label, fracturer, machine in PATHS:
        pipe = PreparationPipeline(
            fracturer=fracturer,
            corrector=IterativeDoseCorrector(max_iterations=10),
            psf=PSF,
            machines=[machine],
            base_dose=5.0,
        )
        result = pipe.run_polygons(polys, name="fzp")
        fidelity = fidelity_report(
            result.job, polys, PSF, pixel=0.15, margin=4.0
        )
        table.add_row(
            [
                label,
                result.job.figure_count(),
                result.write_times[machine.name].total,
                f"{fidelity.area_ratio:.3f}",
                f"{fidelity.error_fraction:.1%}",
            ]
        )
    return table.render()


def test_f7_fzp_case_study(benchmark, save_table):
    text = run_experiment()
    save_table("f7_fzp_case_study", text)
    polys = fzp_polygons()
    benchmark(TrapezoidFracturer().fracture, polys)


def test_f7_fidelity_reasonable(benchmark, save_table):
    """The corrected FZP must print within 35% pattern error."""
    polys = fzp_polygons()
    pipe = PreparationPipeline(
        fracturer=TrapezoidFracturer(),
        corrector=IterativeDoseCorrector(max_iterations=10),
        psf=PSF,
    )
    result = pipe.run_polygons(polys)
    fidelity = fidelity_report(result.job, polys, PSF, pixel=0.15, margin=4.0)
    assert fidelity.error_fraction < 0.35
    assert 0.7 < fidelity.area_ratio < 1.3
    benchmark(
        ShotFracturer(max_shot=2.0).fracture, polys
    )

"""T4 — Electron column operating points: spot size vs. beam current.

Reconstructs the column trade-off table: minimum spot diameter versus
beam current at 10/20/50 kV for a LaB6 gun, plus a source comparison at
20 kV (tungsten / LaB6 / field emission).  This is the physics that sets
every writer's dwell time.
"""

import numpy as np

from repro.analysis.tables import Table
from repro.machine.column import (
    Column,
    FIELD_EMISSION,
    LAB6,
    TUNGSTEN,
)

CURRENTS = (1e-9, 1e-8, 1e-7, 1e-6)


def run_energy_sweep() -> str:
    table = Table(
        ["current [A]", "d @10 kV [µm]", "d @20 kV [µm]", "d @50 kV [µm]"],
        title="T4: minimum spot size vs. beam current (LaB6)",
    )
    columns = {e: Column(LAB6, energy_kev=e) for e in (10.0, 20.0, 50.0)}
    for current in CURRENTS:
        row = [current]
        for energy in (10.0, 20.0, 50.0):
            row.append(columns[energy].best_spot_size(current))
        table.add_row(row)
    return table.render()


def run_source_comparison() -> str:
    table = Table(
        ["current [A]", "W hairpin [µm]", "LaB6 [µm]", "FE [µm]"],
        title="T4a: source comparison at 20 kV",
    )
    cols = [Column(s, 20.0) for s in (TUNGSTEN, LAB6, FIELD_EMISSION)]
    for current in CURRENTS:
        table.add_row([current] + [c.best_spot_size(current) for c in cols])
    return table.render()


def run_current_ceiling() -> str:
    table = Table(
        ["spot [µm]", "max I, LaB6 [A]", "J [A/cm²]"],
        title="T4b: current ceiling vs. required spot size (20 kV LaB6)",
    )
    column = Column(LAB6, 20.0)
    for spot in (0.125, 0.25, 0.5, 1.0, 2.0):
        current = column.max_current_for_spot(spot)
        area_cm2 = np.pi * (spot / 2) ** 2 / 1e8
        table.add_row([spot, current, current / area_cm2])
    return table.render()


def test_t4_column_tradeoff(benchmark, save_table):
    save_table("t4_column_tradeoff", run_energy_sweep())
    save_table("t4a_source_comparison", run_source_comparison())
    save_table("t4b_current_ceiling", run_current_ceiling())
    column = Column(LAB6, 20.0)
    benchmark(column.best_spot_size, 1e-8)


def test_t4_monotonicity(benchmark, save_table):
    """Spot grows with current; brighter sources & higher kV shrink it."""
    column = Column(LAB6, 20.0)
    sizes = [column.best_spot_size(i) for i in CURRENTS]
    assert all(b > a for a, b in zip(sizes, sizes[1:]))
    assert Column(LAB6, 50.0).best_spot_size(1e-8) < Column(
        LAB6, 10.0
    ).best_spot_size(1e-8)
    assert Column(FIELD_EMISSION, 20.0).best_spot_size(1e-8) < Column(
        TUNGSTEN, 20.0
    ).best_spot_size(1e-8)
    benchmark(column.max_current_for_spot, 0.5)

"""F13 — Machine-program export: exact stream sizes, streamed memory.

The tutorial's data-volume argument is about what a machine actually
streams, so the export backend is measured on the workloads whose data
the figure-level estimate mis-prices most: a dense grating (many
figures sharing scanlines — runs merge) and the memory array (shard
fan-out).  Four claims are asserted on every run, ``--quick`` included:

* **exact ≤ estimate** — on a single-shard export the exact RLE stream
  never exceeds :func:`repro.machine.datapath.rle_bytes_estimate` (the
  half-open scanline convention plus run merging guarantee it).
* **bounded memory** — a multi-shard export never materializes more
  than one shard's runs at a time (``peak_segment_bytes`` strictly
  below the total stream).
* **determinism** — ``workers=2`` and warm-cache exports are
  byte-identical to the cold serial program (file digests compared).
* **cache effectiveness** — the warm export answers every segment from
  the program cache.

Full mode additionally reports export throughput (MB of stream per
second of export time).
"""

import time

from repro.analysis.tables import Table
from repro.core.pipeline import PreparationPipeline
from repro.layout import generators

FIELD_SIZE = 20.0
ADDRESS_UNIT = 0.5


def workloads(quick: bool):
    return [
        (
            "grating",
            generators.grating(
                pitch=2.0, duty=0.5, lines=16 if quick else 64, length=40.0
            ),
        ),
        (
            "memory",
            generators.memory_array(
                words=2 if quick else 4,
                bits=2 if quick else 4,
                # Big enough to span several 20 µm writing fields even
                # in quick mode (the bounded-memory assert needs >1
                # segment).
                blocks=(3, 3) if quick else (4, 4),
            ),
        ),
    ]


def export_case(library, name, tmp_path, mode="raster"):
    sharded = PreparationPipeline(
        field_size=FIELD_SIZE,
        address_unit=ADDRESS_UNIT,
        cache_dir=tmp_path / "cache",
        overlap_policy="ignore",
    )
    # field_size=None on run() inherits the pipeline default, so the
    # unsharded reference needs its own pipeline.
    unsharded = PreparationPipeline(address_unit=ADDRESS_UNIT, overlap_policy="ignore")
    runs = {}
    for which, pipe, kwargs in (
        ("single", unsharded, {}),
        ("cold", sharded, {}),
        ("warm", sharded, {}),
        ("workers2", sharded, dict(workers=2, cache=False)),
    ):
        path = tmp_path / f"{name}.{which}.{mode}.ebp"
        start = time.perf_counter()
        result = pipe.run(library, machine=mode, program_path=path, **kwargs)
        elapsed = time.perf_counter() - start
        runs[which] = (result.machine_program, elapsed, path)
    return runs


def test_f13_machine_program_export(save_table, quick, tmp_path):
    table = Table(
        [
            "workload",
            "segments",
            "exact [B]",
            "estimate [B]",
            "ratio",
            "peak seg [B]",
            "export [s]",
        ],
        title=f"F13: machine-program export (quick={quick})",
    )
    data = []
    for name, library in workloads(quick):
        runs = export_case(library, name, tmp_path)
        single, single_time, _ = runs["single"]
        cold, cold_time, cold_path = runs["cold"]
        warm, _, warm_path = runs["warm"]
        par, _, par_path = runs["workers2"]

        # Exact ≤ estimate on the single-shard stream.
        assert 0 < single.stream_bytes <= single.estimate_bytes, (
            f"{name}: exact stream {single.stream_bytes} exceeds the "
            f"estimate {single.estimate_bytes}"
        )
        # Bounded memory: the sharded export streams one shard at a time.
        assert cold.segment_count > 1
        assert 0 < cold.peak_segment_bytes < cold.stream_bytes, (
            f"{name}: peak segment {cold.peak_segment_bytes} not below "
            f"total stream {cold.stream_bytes} — export is not streamed"
        )
        # Determinism: cold = warm = workers2, byte for byte.
        cold_bytes = cold_path.read_bytes()
        assert cold_bytes == warm_path.read_bytes()
        assert cold_bytes == par_path.read_bytes()
        assert cold.digest == warm.digest == par.digest
        # Warm export fully served by the program cache.
        assert warm.cache_hits == warm.segment_count
        assert warm.cache_misses == 0

        table.add_row(
            [
                name,
                cold.segment_count,
                cold.stream_bytes,
                cold.estimate_bytes,
                f"{cold.stream_bytes / cold.estimate_bytes:.2f}",
                cold.peak_segment_bytes,
                cold_time,
            ]
        )
        data.append(
            {
                "workload": name,
                "segments": cold.segment_count,
                "stream_bytes": cold.stream_bytes,
                "estimate_bytes": cold.estimate_bytes,
                "single_shard_stream_bytes": single.stream_bytes,
                "single_shard_estimate_bytes": single.estimate_bytes,
                "peak_segment_bytes": cold.peak_segment_bytes,
                "run_count": cold.run_count,
                "line_count": cold.line_count,
                "cold_export_s": cold_time,
                "single_export_s": single_time,
                "digest": cold.digest,
            }
        )
    save_table("f13_machine_programs", table.render(), data={"cases": data})

"""F14 — Distributed shard execution: scaling, fault floors, speculation.

Three sections, all against an in-process coordinator and worker
daemons (the same code path ``python -m repro.cli work`` runs across
real hosts — CI's dist-smoke job exercises the multi-process variant):

* **scaling** — the full preparation pipeline (fracture + iterative
  proximity correction) dispatched over 1/2/4 worker daemons, each run
  checked byte-for-byte against the local serial reference.  The
  determinism contract is asserted on every row; speedup numbers are
  recorded, not gated (socket + pickle overhead makes small workloads
  scheduler-bound by design).
* **single-worker death** — one of two workers dies mid-lease
  (``dead_worker`` fault) with speculation disabled, so the run must
  survive through heartbeat-silence detection and lease reclaim.
  Floors (asserted in quick mode too): the run completes, the bytes
  are identical to serial, and ``leases_reclaimed >= 1``.
* **straggler speculation** — one worker stalls on its first attempt
  at shard 0.  With speculation on, the end-of-queue duplicate lease
  finishes the shard while the straggler sleeps; with it off, the run
  waits out the stall.  Floors: ``speculative_wins >= 1`` and the
  speculative run beats the non-speculative one on wall-clock.
"""

import threading
import time

from repro.analysis.tables import Table
from repro.core.executor import RetryPolicy, shutdown_worker_pool
from repro.core.faults import FaultPlan
from repro.core.jobfile import dumps_job
from repro.core.pipeline import PreparationPipeline
from repro.dist import (
    DistPolicy,
    WorkerDaemon,
    coordinator_for,
    shutdown_coordinators,
)
from repro.layout import generators
from repro.pec.dose_iter import IterativeDoseCorrector
from repro.physics.psf import DoubleGaussianPSF

WORKER_COUNTS_QUICK = (1, 2)
WORKER_COUNTS_FULL = (1, 2, 4)
#: How long the straggler sleeps on its first attempt at shard 0 [s].
STALL_S = 1.5
#: Small fault-scenario workload: 6 field shards at field_size=4.0.
FAULT_FIELD_SIZE = 4.0


class Fleet:
    """A set of in-process worker daemons against one endpoint."""

    def __init__(self, endpoint, count, throttle=None):
        self.daemons = []
        self.threads = []
        for index in range(count):
            daemon = WorkerDaemon(
                endpoint,
                worker_id=f"bench-w{index}",
                throttle=throttle,
            )
            thread = threading.Thread(target=daemon.run, daemon=True)
            thread.start()
            self.daemons.append(daemon)
            self.threads.append(thread)

    def stop(self):
        for daemon in self.daemons:
            daemon.stop()
        for thread in self.threads:
            thread.join(timeout=10.0)


def scaling_workload(quick: bool):
    if quick:
        return generators.grating(lines=40, length=40.0), 20.0
    return generators.grating(lines=300, length=200.0), 25.0


def fault_workload():
    return generators.grating(pitch=2.0, duty=0.5, lines=12, length=24.0)


def scaling_pipeline(field_size, **kwargs):
    return PreparationPipeline(
        corrector=IterativeDoseCorrector(),
        psf=DoubleGaussianPSF(alpha=0.2, beta=2.0, eta=0.74),
        field_size=field_size,
        **kwargs,
    )


def run_scaling(endpoint, quick, table, records):
    library, field_size = scaling_workload(quick)
    start = time.perf_counter()
    serial = scaling_pipeline(field_size).run(library)
    serial_time = time.perf_counter() - start
    reference = dumps_job(serial.job)
    table.add_row(
        [
            "scaling",
            "local-serial",
            1,
            f"{serial_time:.3f}",
            "1.00x",
            "-",
            "-",
        ]
    )
    records.append(
        {
            "scenario": "scaling",
            "mode": "local-serial",
            "workers": 1,
            "time_s": serial_time,
            "speedup": 1.0,
        }
    )
    counts = WORKER_COUNTS_QUICK if quick else WORKER_COUNTS_FULL
    for workers in counts:
        fleet = Fleet(endpoint, workers)
        try:
            start = time.perf_counter()
            result = scaling_pipeline(
                field_size,
                dispatch="distributed",
                workers_endpoint=endpoint,
            ).run(library)
            elapsed = time.perf_counter() - start
        finally:
            fleet.stop()
        assert dumps_job(result.job) == reference, (
            f"distributed run with {workers} worker(s) diverged "
            "from the serial reference"
        )
        execution = result.execution
        assert execution.dispatch == "distributed"
        speedup = serial_time / elapsed
        table.add_row(
            [
                "scaling",
                "distributed",
                workers,
                f"{elapsed:.3f}",
                f"{speedup:.2f}x",
                execution.leases_granted,
                execution.leases_reclaimed,
            ]
        )
        records.append(
            {
                "scenario": "scaling",
                "mode": "distributed",
                "workers": workers,
                "time_s": elapsed,
                "speedup": speedup,
                "leases_granted": execution.leases_granted,
                "leases_reclaimed": execution.leases_reclaimed,
                "dist_workers": execution.dist_workers,
            }
        )


def run_worker_death(endpoint, table, records):
    library = fault_workload()
    reference = dumps_job(
        PreparationPipeline(field_size=FAULT_FIELD_SIZE).run(library).job
    )
    # Speculation off: survival must come from heartbeat-silence death
    # detection and lease reclaim, the slow path worth benchmarking.
    policy = DistPolicy(
        lease_deadline=8.0,
        heartbeat_interval=0.1,
        heartbeat_timeout=0.8,
        worker_grace=10.0,
        speculate=False,
    )
    fleet = Fleet(endpoint, 2)
    try:
        start = time.perf_counter()
        result = PreparationPipeline(
            field_size=FAULT_FIELD_SIZE,
            dispatch="distributed",
            workers_endpoint=endpoint,
            dist_policy=policy,
            retry=RetryPolicy(max_attempts=4, backoff_base=0.0),
            faults=FaultPlan(dead_worker=frozenset({(0, 0)})),
        ).run(library)
        elapsed = time.perf_counter() - start
    finally:
        fleet.stop()
    execution = result.execution
    assert dumps_job(result.job) == reference, (
        "run under a worker death diverged from the serial reference"
    )
    assert execution.leases_reclaimed >= 1, (
        "worker death left no reclaimed lease"
    )
    assert execution.worker_deaths >= 1
    table.add_row(
        [
            "worker-death",
            "distributed",
            2,
            f"{elapsed:.3f}",
            "-",
            execution.leases_granted,
            execution.leases_reclaimed,
        ]
    )
    records.append(
        {
            "scenario": "worker-death",
            "workers": 2,
            "time_s": elapsed,
            "leases_granted": execution.leases_granted,
            "leases_reclaimed": execution.leases_reclaimed,
            "worker_deaths": execution.worker_deaths,
            "bytes_identical": True,
        }
    )


def run_straggler(endpoint, table, records):
    library = fault_workload()
    reference = dumps_job(
        PreparationPipeline(field_size=FAULT_FIELD_SIZE).run(library).job
    )

    def stall_first_attempt(position, attempt):
        # Attempt 0 of shard 0 stalls; the speculative re-execution
        # (attempt 1) and every other shard run at full speed.
        if position == 0 and attempt == 0:
            time.sleep(STALL_S)

    timings = {}
    for speculate in (False, True):
        policy = DistPolicy(
            lease_deadline=60.0,
            heartbeat_interval=0.1,
            heartbeat_timeout=5.0,
            worker_grace=10.0,
            speculate=speculate,
            speculate_after=0.25,
        )
        fleet = Fleet(endpoint, 2, throttle=stall_first_attempt)
        try:
            start = time.perf_counter()
            result = PreparationPipeline(
                field_size=FAULT_FIELD_SIZE,
                dispatch="distributed",
                workers_endpoint=endpoint,
                dist_policy=policy,
            ).run(library)
            elapsed = time.perf_counter() - start
        finally:
            fleet.stop()
        execution = result.execution
        assert dumps_job(result.job) == reference, (
            f"straggler run (speculate={speculate}) diverged from serial"
        )
        if speculate:
            assert execution.speculative_wins >= 1, (
                "speculation never beat the straggler"
            )
        timings[speculate] = elapsed
        label = "speculate-on" if speculate else "speculate-off"
        table.add_row(
            [
                "straggler",
                label,
                2,
                f"{elapsed:.3f}",
                "-",
                execution.leases_granted,
                execution.leases_reclaimed,
            ]
        )
        records.append(
            {
                "scenario": "straggler",
                "speculate": speculate,
                "workers": 2,
                "time_s": elapsed,
                "stall_s": STALL_S,
                "speculative_wins": execution.speculative_wins,
                "speculative_losses": execution.speculative_losses,
                "bytes_identical": True,
            }
        )
    assert timings[True] < timings[False], (
        f"speculation did not trim the tail: on={timings[True]:.3f}s "
        f"off={timings[False]:.3f}s (stall={STALL_S}s)"
    )


def test_f14_distributed(save_table, quick):
    table = Table(
        [
            "scenario",
            "mode",
            "workers",
            "time [s]",
            "speedup",
            "leases",
            "reclaims",
        ],
        title=f"F14: distributed shard execution (quick={quick})",
    )
    records = []
    endpoint_server = coordinator_for("127.0.0.1:0")
    host, port = endpoint_server.server_address[:2]
    endpoint = f"{host}:{port}"
    try:
        run_scaling(endpoint, quick, table, records)
        run_worker_death(endpoint, table, records)
        run_straggler(endpoint, table, records)
    finally:
        shutdown_coordinators()
        shutdown_worker_pool()
    save_table(
        "f14_distributed",
        table.render(),
        data={"stall_s": STALL_S, "runs": records},
    )

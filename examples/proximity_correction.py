#!/usr/bin/env python
"""Proximity-effect correction walk-through.

Exposes the classic test structure — a fine line next to a large pad —
at 20 kV on silicon, then applies each correction scheme and reports:

1. the absorbed-energy level at every figure (the PEC figure of merit),
2. the printed linewidth along the line (near the pad vs. far from it),
3. the write-time cost of each scheme.

This reproduces, on one structure, the physics behind benchmark F1.

Run:  python examples/proximity_correction.py
"""


from repro import (
    GhostCorrector,
    IterativeDoseCorrector,
    MatrixDoseCorrector,
    Polygon,
    ShapeBiasCorrector,
    TrapezoidFracturer,
    psf_for,
)
from repro.analysis.tables import Table
from repro.geometry.rasterize import RasterFrame
from repro.pec.ghost import GhostExposure, split_ghost
from repro.pec.report import correction_report
from repro.physics.exposure import ExposureSimulator, shot_dose_map
from repro.physics.metrology import measure_linewidth

PAD = 18.0
LINE_W = 0.6
GAP = 1.5
LINE_LEN = 30.0


def test_structure():
    pad = Polygon.rectangle(0, 0, PAD, PAD)
    line_x = PAD + GAP
    line = Polygon.rectangle(line_x, 0, line_x + LINE_W, LINE_LEN)
    return [pad, line], line_x + LINE_W / 2


def printed_widths(shots, psf, ghost_shots=None):
    """Linewidth near the pad (y=5) and far from it (y=25)."""
    bbox = (0, 0, PAD + GAP + LINE_W, LINE_LEN)
    frame = RasterFrame.around(bbox, 0.05, margin=6.0)
    if ghost_shots is not None:
        image = GhostExposure(psf, frame).absorbed(shots, ghost_shots)
        threshold = 0.5 + psf.background_level() * 0.9
    else:
        sim = ExposureSimulator(psf, frame)
        image = sim.absorbed_energy(shot_dose_map(shots, frame))
        threshold = 0.5
    _, center = test_structure()
    near = measure_linewidth(image, frame, threshold, cut_y=5.0, near_x=center)
    far = measure_linewidth(image, frame, threshold, cut_y=25.0, near_x=center)
    return near, far


def main() -> None:
    psf = psf_for(energy_kev=20.0)
    print(f"PSF: α={psf.alpha:.3f} µm, β={psf.beta:.2f} µm, η={psf.eta:.2f}")
    polys, _ = test_structure()
    shots = TrapezoidFracturer().fracture_to_shots(polys)

    schemes = [
        ("uncorrected", None),
        ("iterative dose", IterativeDoseCorrector()),
        ("matrix dose", MatrixDoseCorrector()),
        ("shape bias", ShapeBiasCorrector()),
        ("GHOST", GhostCorrector(margin=6.0)),
    ]

    table = Table(
        ["scheme", "exposure spread", "CD near pad", "CD far",
         "CD delta [nm]", "extra exposure"],
        title=f"Proximity correction of a {LINE_W} µm line beside a "
        f"{PAD:.0f} µm pad (design CD = {LINE_W:.3f} µm)",
    )
    for name, corrector in schemes:
        ghost_shots = None
        if corrector is None:
            corrected = shots
        elif isinstance(corrector, GhostCorrector):
            corrected = corrector.correct(shots, psf)
            corrected, ghost_shots = split_ghost(corrected, len(shots))
        else:
            corrected = corrector.correct(shots, psf)
        report = correction_report(
            corrected + (ghost_shots or []), psf
        )
        # Exposure cost relative to the uncorrected pattern pass.
        base_exposure = sum(s.area() for s in shots)
        scheme_exposure = sum(
            s.dose * s.area() for s in corrected + (ghost_shots or [])
        )
        extra = scheme_exposure / base_exposure - 1.0
        near, far = printed_widths(corrected, psf, ghost_shots)
        delta = (
            abs(near - far) * 1e3 if near is not None and far is not None
            else float("nan")
        )
        table.add_row(
            [
                name,
                f"{report.spread:.3f}",
                f"{near:.3f}" if near else "no print",
                f"{far:.3f}" if far else "no print",
                f"{delta:.0f}",
                f"{extra:+.1%}",
            ]
        )
    print(table.render())
    print()
    print(
        "Reading: uncorrected, the line prints wider near the pad (fogged\n"
        "by backscatter). Dose correction equalizes the absorbed level per\n"
        "figure; GHOST equalizes the background globally at the price of\n"
        "writing the complement."
    )


if __name__ == "__main__":
    main()

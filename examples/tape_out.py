#!/usr/bin/env python
"""Tape-out: from GDSII to a verified, field-partitioned machine tape.

The full production sequence a 1979 mask shop ran:

1. read the hierarchical layout (GDSII),
2. fracture hierarchically (cell-cached — the fast path),
3. proximity-correct shot doses,
4. partition into deflection fields and order shots within each field,
5. write the binary job file ("the tape"),
6. read it back and XOR-verify it against the source geometry,
7. report write time and butting exposure.

Run:  python examples/tape_out.py
"""

import random
import tempfile
from pathlib import Path

from repro import (
    IterativeDoseCorrector,
    MachineJob,
    ShapedBeamWriter,
    psf_for,
)
from repro.analysis.verify import verify_patterns
from repro.core.fields import (
    deflection_travel,
    order_shots,
    partition_fields,
    travel_settle_time,
)
from repro.core.hierarchical import fracture_hierarchical
from repro.core.jobfile import read_job, write_job
from repro.fracture.base import Shot
from repro.layout import generators
from repro.layout.flatten import flatten_cell
from repro.layout.gdsii import read_gdsii, write_gdsii

FIELD_SIZE = 60.0  # µm
BASE_DOSE = 2.0  # µC/cm²


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        # 1. The "incoming" layout: write + read GDSII to start from disk.
        gds_path = Path(tmp) / "chip.gds"
        write_gdsii(
            generators.memory_array(words=8, bits=8, blocks=(4, 4)), gds_path
        )
        library = read_gdsii(gds_path)
        print(f"read {gds_path.name}: {len(library)} cells")

        # 2. Hierarchical fracture.
        fractured = fracture_hierarchical(library)
        figures = [t for group in fractured.figures.values() for t in group]
        print(
            f"fractured: {fractured.figure_count()} figures "
            f"({fractured.cells_fractured} cell fractures, "
            f"{fractured.instances_reused} instance reuses)"
        )

        # 3. Proximity correction.
        psf = psf_for(20.0)
        shots = [Shot(t) for t in figures]
        shots = IterativeDoseCorrector(max_iterations=8).correct(shots, psf)
        doses = [s.dose for s in shots]
        print(f"PEC doses: {min(doses):.2f} – {max(doses):.2f}")

        # 4. Fields + ordering.
        job = MachineJob(shots, base_dose=BASE_DOSE, name="chip")
        fielded = partition_fields(job, FIELD_SIZE)
        cols, rows = fielded.field_grid()
        print(
            f"fields: {cols}x{rows} at {FIELD_SIZE:.0f} µm, "
            f"{fielded.boundary_shot_fraction():.1%} boundary pieces"
        )
        ordered = []
        travel_before = 0.0
        travel_after = 0.0
        for index in sorted(fielded.fields):
            field_shots = list(fielded.fields[index])
            random.Random(0).shuffle(field_shots)  # pessimize first
            travel_before += deflection_travel(field_shots)
            tour = order_shots(field_shots, "nearest")
            travel_after += deflection_travel(tour)
            ordered.extend(tour)
        print(
            f"shot ordering: deflection travel {travel_before:,.0f} → "
            f"{travel_after:,.0f} µm "
            f"(settle {travel_settle_time(ordered) * 1e3:.2f} ms)"
        )

        # 5. The tape.
        tape_job = MachineJob(ordered, base_dose=BASE_DOSE, name="chip")
        tape_path = Path(tmp) / "chip.ebj"
        tape_bytes = write_job(tape_job, tape_path)
        print(f"wrote {tape_path.name}: {tape_bytes:,} bytes")

        # 6. Verification: tape vs. flattened source.
        restored = read_job(tape_path)
        flat = flatten_cell(library.top_cell())
        source_polys = [p for group in flat.values() for p in group]
        report = verify_patterns(
            source_polys,
            [s.trapezoid for s in restored.shots],
            tolerance=0.05,
        )
        print(f"verification: {report.summary()}")

        # 7. Write time.
        machine = ShapedBeamWriter(max_shot=5.0, field_size=FIELD_SIZE)
        breakdown = machine.write_time(restored)
        print(
            f"write time on {machine.name}: {breakdown.total:.2f} s "
            f"(exposure {breakdown.exposure:.3f} s, "
            f"shots {restored.figure_count()})"
        )


if __name__ == "__main__":
    main()

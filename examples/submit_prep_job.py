"""Submit a preparation job to a running prep service and poll it home.

Start a server first::

    python -m repro.cli serve --port 8080 --work-dir .prep-service

then submit a job and download its artifacts::

    python examples/submit_prep_job.py --url http://127.0.0.1:8080 \
        --workload fzp --pec --field-size 15 --machine raster \
        --output fzp.ebj --program-output fzp.raster.ebp

The script exits non-zero if the submission is rejected, the job fails
or is cancelled — so CI smoke suites can gate on it directly.  It only
uses the standard library, like the service itself.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import urllib.error
import urllib.request


def _request(url: str, method: str = "GET", payload: dict | None = None):
    data = json.dumps(payload).encode() if payload is not None else None
    headers = {"Content-Type": "application/json"} if data else {}
    req = urllib.request.Request(url, data=data, method=method, headers=headers)
    with urllib.request.urlopen(req, timeout=60) as response:
        return response.status, response.read()


def submit(base: str, payload: dict) -> dict:
    try:
        _, body = _request(f"{base}/jobs", "POST", payload)
    except urllib.error.HTTPError as err:
        detail = json.loads(err.read()).get("error", "")
        sys.exit(f"submission rejected ({err.code}): {detail}")
    view = json.loads(body)
    print(f"submitted job {view['id']} ({view['name']}, state {view['state']})")
    return view


def poll(base: str, job_id: str, interval: float) -> dict:
    last = None
    while True:
        _, body = _request(f"{base}/jobs/{job_id}")
        view = json.loads(body)
        progress = view["progress"]
        line = (
            f"  {view['state']}: {progress['shards_done']}"
            f"/{progress['shards_total']} shards"
        )
        if line != last:
            print(line)
            last = line
        if view["state"] in ("done", "failed", "cancelled"):
            return view
        time.sleep(interval)


def download(base: str, job_id: str, artifact: str, path: str) -> None:
    _, body = _request(f"{base}/jobs/{job_id}/result?artifact={artifact}")
    with open(path, "wb") as stream:
        stream.write(body)
    print(f"  wrote {artifact} artifact {path} ({len(body):,} bytes)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="submit a job to the prep service and poll to completion"
    )
    parser.add_argument("--url", default="http://127.0.0.1:8080")
    parser.add_argument("--workload", default="fzp")
    parser.add_argument("--pec", action="store_true")
    parser.add_argument("--pec-matrix", default=None)
    parser.add_argument("--field-size", type=float, default=None)
    parser.add_argument("--hierarchy", default=None)
    parser.add_argument("--machine", default=None)
    parser.add_argument("--workers", type=int, default=None)
    parser.add_argument("--priority", type=int, default=0)
    parser.add_argument("--output", default=None, help=".ebj destination")
    parser.add_argument(
        "--program-output", default=None, help=".ebp destination"
    )
    parser.add_argument("--poll-interval", type=float, default=0.2)
    args = parser.parse_args(argv)

    payload: dict = {"workload": args.workload, "priority": args.priority}
    if args.pec:
        payload["pec"] = True
    for knob in ("pec_matrix", "field_size", "hierarchy", "machine", "workers"):
        value = getattr(args, knob)
        if value is not None:
            payload[knob] = value

    base = args.url.rstrip("/")
    view = submit(base, payload)
    view = poll(base, view["id"], args.poll_interval)
    if view["state"] != "done":
        sys.exit(f"job {view['id']} {view['state']}: {view.get('error')}")

    result = view["result"]
    execution = result["execution"]
    print(f"  digest:  {result['digest']}")
    print(f"  figures: {result['figure_count']}")
    print(
        f"  cache:   {execution['cache_hits']} hits, "
        f"{execution['cache_misses']} misses"
    )
    if args.output:
        download(base, view["id"], "job", args.output)
    if args.program_output:
        download(base, view["id"], "program", args.program_output)
    return 0


if __name__ == "__main__":
    sys.exit(main())

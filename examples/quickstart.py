#!/usr/bin/env python
"""Quickstart: prepare a layout for e-beam writing in ten lines.

Builds a small test layout, runs the full data-preparation pipeline
(fracture → proximity correction → machine job), and prints write-time
estimates for the three 1979 machine architectures.

Run:  python examples/quickstart.py
"""

from repro import (
    Cell,
    IterativeDoseCorrector,
    Library,
    Polygon,
    PreparationPipeline,
    RasterScanWriter,
    ShapedBeamWriter,
    VectorScanWriter,
    psf_for,
)


def build_layout() -> Library:
    """A toy chip: a contact array next to an isolated fine line."""
    contact = Cell("CONTACT")
    contact.add_rectangle(0, 0, 1.0, 1.0)

    top = Cell("CHIP")
    top.instantiate_array(contact, columns=10, rows=10, pitch_x=3.0, pitch_y=3.0)
    top.add_polygon(Polygon.rectangle(35.0, 0.0, 35.5, 30.0))  # fine line
    top.add_polygon(Polygon([(40, 0), (50, 0), (45, 10)]))  # a triangle too

    library = Library("QUICKSTART")
    library.add(top)
    return library


def main() -> None:
    library = build_layout()

    pipeline = PreparationPipeline(
        corrector=IterativeDoseCorrector(),
        psf=psf_for(energy_kev=20.0),  # 20 kV beam on silicon
        machines=[
            RasterScanWriter(calibration_time=1.0),
            VectorScanWriter(),
            ShapedBeamWriter(),
        ],
        base_dose=5.0,  # µC/cm²
    )
    result = pipeline.run(library)

    job = result.job
    print(f"job {job.name!r}:")
    print(f"  machine figures : {job.figure_count()}")
    print(f"  pattern area    : {job.pattern_area():.1f} µm²")
    print(f"  pattern density : {job.pattern_density():.1%}")
    lo, hi = job.dose_range()
    print(f"  PEC dose range  : {lo:.2f} – {hi:.2f} (relative)")
    print()
    print("write-time estimates:")
    for name, breakdown in sorted(result.write_times.items()):
        print(
            f"  {name:12s} total {breakdown.total:8.3f} s"
            f"  (exposure {breakdown.exposure:.3f} s, "
            f"overhead {breakdown.figure_overhead:.3f} s)"
        )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Write a Fresnel zone plate: curved geometry end to end.

The zone plate is the canonical "only e-beam can do this" workload of the
era: concentric sub-µm rings that no optical pattern generator could
draw.  This script:

1. generates a 24-zone FZP,
2. fractures it three ways (trapezoids, staircase rectangles, VSB shots),
3. dose-corrects the VSB path and estimates write times,
4. simulates the exposure and verifies the printed ring widths.

Run:  python examples/zone_plate_writer.py
"""

from repro import (
    IterativeDoseCorrector,
    PreparationPipeline,
    RasterScanWriter,
    RectangleFracturer,
    ShapedBeamWriter,
    ShotFracturer,
    TrapezoidFracturer,
    VectorScanWriter,
    psf_for,
)
from repro.analysis.tables import Table
from repro.core.metrics import fidelity_report
from repro.layout import generators
from repro.layout.flatten import flatten_cell

ZONES = 24
WAVELENGTH = 0.532  # µm (green)
FOCAL = 150.0  # µm


def main() -> None:
    library = generators.fresnel_zone_plate(
        wavelength=WAVELENGTH,
        focal_length=FOCAL,
        zones=ZONES,
        points_per_arc=64,
    )
    flat = flatten_cell(library.top_cell())
    polygons = [p for group in flat.values() for p in group]
    design_area = sum(p.area() for p in polygons)
    bbox = library.top_cell().bounding_box()
    print(
        f"{ZONES}-zone FZP for λ={WAVELENGTH} µm, f={FOCAL} µm: "
        f"diameter {bbox[2] - bbox[0]:.1f} µm, "
        f"outer zone width "
        f"{(bbox[2] - bbox[0]) / 2 - _radius(ZONES - 1):.3f} µm"
    )

    psf = psf_for(20.0)
    paths = [
        ("raster / staircase", RectangleFracturer(address_unit=0.25),
         RasterScanWriter(address_unit=0.25, calibration_time=2.0)),
        ("vector / trapezoid", TrapezoidFracturer(),
         VectorScanWriter(spot_size=0.25)),
        ("VSB / shots", ShotFracturer(max_shot=2.0),
         ShapedBeamWriter(max_shot=2.0)),
    ]

    table = Table(
        ["machine path", "figures", "write [s]", "printed/design",
         "pattern err"],
        title="FZP writing comparison (dose-corrected, dose 5 µC/cm²)",
    )
    for label, fracturer, machine in paths:
        pipeline = PreparationPipeline(
            fracturer=fracturer,
            corrector=IterativeDoseCorrector(max_iterations=8),
            psf=psf,
            machines=[machine],
            base_dose=5.0,
        )
        result = pipeline.run_polygons(polygons, name="fzp")
        fidelity = fidelity_report(
            result.job, polygons, psf, pixel=0.15, margin=4.0
        )
        table.add_row(
            [
                label,
                result.job.figure_count(),
                result.write_times[machine.name].total,
                f"{fidelity.area_ratio:.3f}",
                f"{fidelity.error_fraction:.1%}",
            ]
        )
    print(table.render())
    print(
        "\nReading: trapezoid fracture carries curved zones with ~3x fewer"
        "\nfigures than the raster staircase; the VSB path adds shots for"
        "\nthe max-shot tiling but wins on write time for sparse optics."
    )


def _radius(n: int) -> float:
    return (n * WAVELENGTH * FOCAL + (n * WAVELENGTH / 2) ** 2) ** 0.5


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Format interchange: GDSII and CIF round-trips plus data-volume audit.

Builds a hierarchical memory-array layout, writes it as binary GDSII and
as CIF text, reads both back, verifies the flattened geometry agrees, and
compares the file sizes against the flat fractured machine stream — the
data-preparation bookkeeping of benchmark T3.

Run:  python examples/gdsii_roundtrip.py
"""

import tempfile
from pathlib import Path

from repro import TrapezoidFracturer
from repro.analysis.tables import Table
from repro.layout import generators
from repro.layout.cif import read_cif, write_cif
from repro.layout.flatten import flat_area, flatten_cell
from repro.layout.gdsii import read_gdsii, write_gdsii
from repro.layout.stats import library_stats
from repro.machine.datapath import data_volume_report


def main() -> None:
    library = generators.memory_array(words=8, bits=8, blocks=(4, 4))
    stats = library_stats(library)
    print(f"layout: {library.name}")
    print(f"  cells          : {stats.cell_count}")
    print(f"  hierarchy depth: {stats.depth}")
    print(f"  stored polygons: {stats.hierarchical_polygons}")
    print(f"  flat polygons  : {stats.flat_polygons}")
    print(f"  compaction     : {stats.compaction_ratio:.0f}x")
    print()

    with tempfile.TemporaryDirectory() as tmp:
        gds_path = Path(tmp) / "memory.gds"
        cif_path = Path(tmp) / "memory.cif"
        gds_bytes = write_gdsii(library, gds_path)
        cif_bytes = write_cif(library, cif_path)

        restored_gds = read_gdsii(gds_path)
        restored_cif = read_cif(cif_path)

    area_original = flat_area(flatten_cell(library.top_cell()))
    area_gds = flat_area(flatten_cell(restored_gds.top_cell()))
    area_cif = flat_area(flatten_cell(restored_cif.top_cell()))
    print("round-trip check (flattened pattern area, µm²):")
    print(f"  original : {area_original:.3f}")
    print(f"  GDSII    : {area_gds:.3f}  (Δ {abs(area_gds - area_original):.2e})")
    print(f"  CIF      : {area_cif:.3f}  (Δ {abs(area_cif - area_original):.2e})")
    print()

    # Flat machine stream for the same layout.
    flat = flatten_cell(library.top_cell())
    polygons = [p for group in flat.values() for p in group]
    figures = TrapezoidFracturer().fracture(polygons)
    bbox = library.top_cell().bounding_box()
    report = data_volume_report(
        figures,
        source_bytes=gds_bytes,
        width=bbox[2] - bbox[0],
        height=bbox[3] - bbox[1],
        address_unit=0.5,
    )

    table = Table(["format", "bytes"], title="data volume")
    table.add_row(["GDSII (hierarchical)", gds_bytes])
    table.add_row(["CIF (hierarchical text)", cif_bytes])
    table.add_row(["flat figure stream", report.figure_bytes])
    table.add_row(["RLE bitmap estimate", report.rle_bytes])
    table.add_row(["raw bitmap (1 bit/address)", report.bitmap_bytes])
    print(table.render())
    print(
        f"\nflat/hierarchical expansion: {report.expansion_ratio:.0f}x "
        f"({report.figure_count} machine figures)"
    )


if __name__ == "__main__":
    main()

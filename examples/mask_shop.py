#!/usr/bin/env python
"""Mask-shop scenario: choose a pattern generator for a product mix.

A 1979 mask shop weighing an EBES-class raster machine against vector and
shaped-beam writers for three representative mask levels:

* a dense metal level (random logic wiring),
* a sparse contact level,
* a curved optics level (Fresnel zone plate).

For each level the script prepares the data with the machine-appropriate
fracturer, estimates writing time, converts it to masks/hour, and prints
the recommendation — the decision procedure the DAC 1979 tutorial walks
its audience through.

Run:  python examples/mask_shop.py
"""

from repro import (
    PreparationPipeline,
    RasterScanWriter,
    ShapedBeamWriter,
    ThroughputModel,
    VectorScanWriter,
)
from repro.analysis.tables import Table
from repro.fracture.shots import ShotFracturer
from repro.fracture.trapezoidal import TrapezoidFracturer
from repro.layout import generators

BASE_DOSE = 2.0  # µC/cm² — fast mask resist (COP class)


def mask_levels():
    """The product mix: (name, library)."""
    return [
        (
            "metal (dense)",
            generators.random_logic(
                chip_size=300.0, wire_width=2.0, target_density=0.35, seed=9
            ),
        ),
        (
            "contacts (sparse)",
            generators.contact_array(size=2.0, pitch=12.0, columns=24, rows=24),
        ),
        (
            "zone plate (curved)",
            generators.fresnel_zone_plate(zones=16, points_per_arc=48),
        ),
    ]


def main() -> None:
    machines = [
        RasterScanWriter(address_unit=0.5, calibration_time=2.0),
        VectorScanWriter(spot_size=0.5),
        ShapedBeamWriter(max_shot=2.0),
    ]
    throughput = ThroughputModel()

    table = Table(
        ["level", "figures", "density", "raster [s]", "vector [s]",
         "VSB [s]", "recommendation"],
        title="Mask-shop machine selection (per-chip write time)",
    )
    for name, library in mask_levels():
        times = {}
        figures = 0
        density = 0.0
        for machine in machines:
            if isinstance(machine, ShapedBeamWriter):
                fracturer = ShotFracturer(max_shot=machine.max_shot)
            else:
                fracturer = TrapezoidFracturer()
            pipeline = PreparationPipeline(
                fracturer=fracturer, machines=[machine], base_dose=BASE_DOSE
            )
            result = pipeline.run(library, name=name)
            times[machine.name] = result.write_times[machine.name].total
            figures = max(figures, result.job.figure_count())
            density = result.job.pattern_density()
        winner = min(times, key=times.get)
        table.add_row(
            [
                name,
                figures,
                f"{density:.1%}",
                times["raster"],
                times["vector"],
                times["shaped-beam"],
                winner,
            ]
        )
    print(table.render())
    print()

    # Wafer-level view for the dense metal level on the winning machines.
    print("Throughput at wafer level (dense metal level):")
    library = mask_levels()[0][1]
    for machine in machines:
        pipeline = PreparationPipeline(machines=[machine], base_dose=BASE_DOSE)
        result = pipeline.run(library)
        report = throughput.report(machine, result.job)
        print(
            f"  {machine.name:12s} {report.wafers_per_hour:6.2f} wafers/h "
            f"({report.chips_per_wafer} chips, "
            f"beam-on fraction {report.exposure_fraction:.1%})"
        )


if __name__ == "__main__":
    main()
